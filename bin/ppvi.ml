(* ppvi: command-line front end for the library's training workloads.
   The benchmark tables live in bench/main.exe; this binary is for
   interactive use — train one workload with chosen settings and print
   human-readable results (optionally a CSV series for plotting). *)

open Cmdliner

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~doc:"PRNG seed.")

let steps_arg default =
  Arg.(value & opt int default & info [ "steps" ] ~doc:"Optimization steps.")

let csv_arg =
  Arg.(
    value & flag
    & info [ "csv" ] ~doc:"Print the per-step objective series as CSV.")

(* Shared by every command: configure the tensor-kernel domain pool
   before the workload runs. Results are bit-identical for any value. *)
let domains_term =
  let apply = function Some n -> Parallel.set_domains n | None -> () in
  Term.(
    const apply
    $ Arg.(
        value
        & opt (some int) None
        & info [ "domains" ]
            ~env:(Cmd.Env.info "PPVI_DOMAINS")
            ~docv:"N"
            ~doc:
              "Number of OCaml domains for parallel tensor kernels (default \
               \\$(env) or 1). Every domain count produces bit-identical \
               results."))

let print_series csv reports =
  if csv then begin
    print_endline "step,objective";
    List.iter
      (fun r -> Printf.printf "%d,%.6f\n" r.Train.step r.Train.objective)
      reports
  end

(* Resilience options, shared by every training command: guard policy,
   gradient clipping, checkpoint/resume paths, rotated in-loop
   checkpointing, and (for resilience testing) a fault-injection
   plan. *)

type resilience = {
  guard : Guard.t;
  checkpoint : string option;
  resume : string option;
  persist : Persist.cfg option;
}

let policy_conv =
  let parse s =
    match Guard.policy_of_string s with
    | Some p -> Ok p
    | None ->
      Error
        (`Msg
          (Printf.sprintf
             "unknown guard policy %S (expected fail-fast|skip-step|rollback-retry)"
             s))
  in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf (Guard.policy_name p))

let positive_float_conv =
  let parse s =
    match float_of_string_opt s with
    | Some x when x > 0. && Float.is_finite x -> Ok x
    | Some _ -> Error (`Msg "expected a positive finite number")
    | None -> Error (`Msg (Printf.sprintf "invalid number %S" s))
  in
  Arg.conv (parse, fun ppf x -> Format.fprintf ppf "%g" x)

let fault_spec_conv =
  let parse s =
    match Fault.plan_of_string ~seed:0 s with
    | Ok _ -> Ok s
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf s)

let resilience_term =
  let make policy clip_norm max_retries checkpoint resume ckpt_dir ckpt_every
      ckpt_keep fault fault_seed =
    (match fault with
    | None -> Fault.clear ()
    | Some spec -> (
      match Fault.plan_of_string ~seed:fault_seed spec with
      | Ok plan -> Fault.install plan
      | Error msg ->
        Printf.eprintf "ppvi: bad --fault spec: %s\n" msg;
        exit 1));
    let persist =
      Option.map
        (fun dir -> Persist.cfg ~every:ckpt_every ~keep:ckpt_keep dir)
        ckpt_dir
    in
    { guard = Guard.create ~policy ?clip_norm ~max_retries ();
      checkpoint; resume; persist }
  in
  Term.(
    const make
    $ Arg.(
        value
        & opt policy_conv Guard.Skip_step
        & info [ "guard-policy" ]
            ~doc:
              "What to do when a NaN/Inf objective or gradient is detected: \
               $(b,fail-fast), $(b,skip-step), or $(b,rollback-retry).")
    $ Arg.(
        value
        & opt (some positive_float_conv) None
        & info [ "clip-norm" ]
            ~doc:"Clip gradients jointly to this global L2 norm.")
    $ Arg.(
        value & opt int 3
        & info [ "max-retries" ]
            ~doc:"Rollback budget under --guard-policy=rollback-retry.")
    $ Arg.(
        value
        & opt (some string) None
        & info [ "checkpoint" ] ~docv:"FILE"
            ~doc:"Save the trained parameters to $(docv) when done.")
    $ Arg.(
        value
        & opt (some string) None
        & info [ "resume" ] ~docv:"PATH"
            ~doc:
              "Load parameters from $(docv) — a checkpoint file, or a \
               $(b,--ckpt-dir) directory (the newest readable checkpoint \
               wins) — and continue training.")
    $ Arg.(
        value
        & opt (some string) None
        & info [ "ckpt-dir" ] ~docv:"DIR"
            ~doc:
              "Write rotated, checksummed checkpoints ($(b,ckpt.N) + \
               $(b,latest)) into $(docv) during training, and resume \
               from the newest readable one on startup — a crashed run \
               restarted with the same arguments continues bit-exactly \
               (see docs/RESILIENCE.md).")
    $ Arg.(
        value & opt int 25
        & info [ "ckpt-every" ] ~docv:"N"
            ~doc:"Checkpoint every $(docv) committed steps (with --ckpt-dir).")
    $ Arg.(
        value & opt int 3
        & info [ "ckpt-keep" ] ~docv:"N"
            ~doc:"Rotation depth for --ckpt-dir (default 3).")
    $ Arg.(
        value
        & opt (some fault_spec_conv) None
        & info [ "fault" ] ~docv:"SPEC"
            ~doc:
              "Install a deterministic fault-injection plan for this run \
               (resilience testing; see $(b,ppvi chaos) and \
               docs/RESILIENCE.md). Example: \
               \"grad-nan=0.05 io-error=0.1 kill-in=10..40\".")
    $ Arg.(
        value & opt int 0
        & info [ "fault-seed" ] ~docv:"N"
            ~doc:"Seed for the --fault plan's own PRNG stream."))

(* Observability options shared by the training commands: stream a
   JSONL trace and/or print the aggregated tables at the end. *)

type obs_opts = { trace : string option; metrics : bool }

let obs_term =
  let make trace metrics = { trace; metrics } in
  Term.(
    const make
    $ Arg.(
        value
        & opt (some string) None
        & info [ "trace" ] ~docv:"FILE"
            ~doc:
              "Enable observability and stream span/metric events to \
               $(docv) as JSON Lines (schema in docs/OBSERVABILITY.md). \
               Preflight and progress messages become \"msg\" events in \
               the file, keeping stderr machine-clean.")
    $ Arg.(
        value & flag
        & info [ "metrics" ]
            ~doc:
              "Enable observability and print the aggregated span, \
               counter, and estimator tables to stderr when the run \
               finishes."))

let open_trace path =
  try Obs.configure ~enabled:true ~sink:(`File path) ()
  with Sys_error msg ->
    Printf.eprintf "ppvi: cannot open trace file: %s\n" msg;
    exit 1

let obs_setup o =
  match o.trace with
  | Some path -> open_trace path
  | None -> if o.metrics then Obs.configure ~enabled:true ()

(* Snapshot the process-wide gauges the library layers cannot push
   themselves (they would need a dependency on lib/parallel). *)
let obs_gauges () =
  Obs.gauge "parallel/domains" (float_of_int (Parallel.domains ()));
  Obs.gauge "parallel/jobs" (float_of_int (Parallel.jobs_run ()));
  Obs.gauge "parallel/jobs_parallel"
    (float_of_int (Parallel.jobs_parallel ()));
  Obs.gauge "parallel/blocks" (float_of_int (Parallel.blocks_run ()));
  Obs.gauge "ad/nodes_total" (float_of_int (Ad.node_count ()));
  Obs.gauge "ad/peak_live_nodes" (float_of_int (Ad.peak_live_nodes ()));
  Obs.gauge "ad/remat_replays" (float_of_int (Ad.remat_replays ()))

let obs_finish o =
  if o.trace <> None || o.metrics then obs_gauges ();
  if o.metrics then Obs.report_human Format.err_formatter;
  if o.trace <> None then begin
    Obs.flush ();
    Obs.shutdown ()
  end

(* Opt-in static pre-flight shared by the training commands: analyze
   this workload's registry targets before training. Warnings by
   default; --preflight-strict turns error-severity diagnostics into a
   non-zero exit. *)
let preflight_term =
  let make enabled strict = (enabled || strict, strict) in
  Term.(
    const make
    $ Arg.(
        value & flag
        & info [ "preflight" ]
            ~doc:
              "Statically analyze this workload's model/guide programs \
               before training (see $(b,ppvi check)); diagnostics are \
               printed to stderr.")
    $ Arg.(
        value & flag
        & info [ "preflight-strict" ]
            ~doc:
              "Like $(b,--preflight), but exit with an error when the \
               analyzer reports error-severity diagnostics."))

let run_preflight (enabled, strict) filter =
  if enabled then begin
    let results = Preflight.run_all ~filter () in
    let clean = List.filter (fun (e, _) -> e.Preflight.expect = []) results in
    List.iter
      (fun (e, r) ->
        List.iter
          (fun d ->
            Obs.message Obs.Preflight
              (Format.asprintf "[preflight %s] %a" e.Preflight.name
                 Check.pp_diagnostic d))
          r.Check.diagnostics)
      clean;
    let bad = List.filter (fun (_, r) -> Check.has_errors r) clean in
    if bad <> [] then begin
      Obs.message Obs.Preflight
        (Printf.sprintf
           "preflight: %d of %d target(s) have error-severity diagnostics"
           (List.length bad) (List.length clean));
      if strict then exit 1
    end
    else
      Obs.message Obs.Preflight
        (Printf.sprintf "preflight: %d target(s) clean" (List.length clean))
  end

(* When a --resume file is missing or corrupt, scan its directory for a
   sibling rotated checkpoint that still loads and suggest it — one
   actionable line instead of a backtrace. *)
let resume_hint path =
  let dir = Filename.dirname path in
  let index f =
    if String.length f > 5 && String.sub f 0 5 = "ckpt." then
      int_of_string_opt (String.sub f 5 (String.length f - 5))
    else None
  in
  let loadable =
    match Sys.readdir dir with
    | exception Sys_error _ -> []
    | files ->
      Array.to_list files
      |> List.filter_map (fun f ->
             match index f with
             | Some i when f <> Filename.basename path -> (
               let full = Filename.concat dir f in
               match Store.load full with
               | _ -> Some (i, full)
               | exception _ -> None)
             | _ -> None)
  in
  match List.sort (fun (a, _) (b, _) -> compare b a) loadable with
  | (_, best) :: _ ->
    Printf.sprintf " (a loadable checkpoint exists at %s; try --resume %s)"
      best best
  | [] -> ""

let resume_fail path what =
  Printf.eprintf "ppvi: cannot resume: %s%s\n" what (resume_hint path);
  exit 1

let initial_store r =
  Option.map
    (fun path ->
      if Sys.file_exists path && Sys.is_directory path then
        (* A directory: pick the newest readable rotated checkpoint,
           falling back past corrupt ones. The typed error carries the
           right hint for each failure (missing dir / empty dir /
           all-corrupt) instead of presuming a loadable sibling. *)
        match Store.load_latest_result path with
        | Ok (store, chosen) ->
          Printf.printf "resuming from %s\n" chosen;
          store
        | Error e ->
          Printf.eprintf "ppvi: cannot resume: %s\n"
            (Store.latest_error_message e);
          exit 1
      else
        try Store.load path with
        | Sys_error msg -> resume_fail path msg
        | Store.Corrupt_checkpoint msg ->
          resume_fail path
            (Printf.sprintf "corrupt checkpoint %s: %s" path msg))
    r.resume

let finish_run r store =
  (match r.checkpoint with
  | Some path -> (
    try
      Store.save store path;
      Printf.printf "checkpoint saved to %s (%d parameters)\n" path
        (Store.parameter_count store)
    with Sys_error msg ->
      Printf.eprintf "ppvi: cannot save checkpoint: %s\n" msg;
      exit 1)
  | None -> ());
  let g = r.guard in
  if Guard.anomaly_count g > 0 || Guard.retry_count g > 0 then
    Printf.printf
      "guard [%s]: %d anomalies, %d skipped steps, %d rollbacks\n"
      (Guard.policy_name (Guard.policy g))
      (Guard.anomaly_count g) (Guard.skip_count g) (Guard.retry_count g);
  if Fault.active () then begin
    (match Fault.injected () with
    | [] -> Printf.printf "faults injected: none\n"
    | tallies ->
      Printf.printf "faults injected:%s\n"
        (String.concat ""
           (List.map (fun (k, n) -> Printf.sprintf " %s=%d" k n) tallies)));
    Fault.clear ()
  end

(* cone *)

let cone_objective_conv =
  let parse = function
    | "elbo" -> Ok Cone.Elbo
    | "iwelbo" -> Ok (Cone.Iwelbo 5)
    | "hvi" -> Ok Cone.Hvi
    | "iwhvi" -> Ok (Cone.Iwhvi 5)
    | "diwhvi" -> Ok (Cone.Diwhvi (5, 5))
    | s -> Error (`Msg (Printf.sprintf "unknown objective %S" s))
  in
  Arg.conv (parse, fun ppf k -> Format.pp_print_string ppf (Cone.objective_name k))

let cone_cmd =
  let run objective steps seed csv resilience pf obs =
    obs_setup obs;
    run_preflight pf "cone/";
    let store, reports =
      Cone.train ~steps ~guard:resilience.guard ?persist:resilience.persist
        ?store:(initial_store resilience) objective (Prng.key seed)
    in
    Printf.printf "%s after %d steps: %.3f\n"
      (Cone.objective_name objective)
      steps
      (Cone.final_value store objective (Prng.key (seed + 1)));
    print_series csv reports;
    finish_run resilience store;
    obs_finish obs
  in
  Cmd.v
    (Cmd.info "cone" ~doc:"Train a guide on the ring posterior (Fig. 2/3).")
    Term.(
      const (fun () -> run)
      $ domains_term
      $ Arg.(
          value
          & opt cone_objective_conv Cone.Elbo
          & info [ "objective" ] ~doc:"elbo|iwelbo|hvi|iwhvi|diwhvi")
      $ steps_arg 1500 $ seed_arg $ csv_arg $ resilience_term
      $ preflight_term $ obs_term)

(* coin *)

let coin_cmd =
  let run steps seed csv resilience pf obs =
    obs_setup obs;
    run_preflight pf "coin";
    let store, reports, seconds =
      Coin.train ~steps ~guard:resilience.guard ?persist:resilience.persist
        ?store:(initial_store resilience) (Prng.key seed)
    in
    Printf.printf
      "posterior mean %.3f (exact %.3f), final ELBO %.2f, %.2f s\n"
      (Coin.posterior_mean store) Coin.exact_posterior_mean
      (Coin.final_elbo store (Prng.key (seed + 1)))
      seconds;
    print_series csv reports;
    finish_run resilience store;
    obs_finish obs
  in
  Cmd.v
    (Cmd.info "coin" ~doc:"Beta-Bernoulli coin fairness (Appendix D.1).")
    Term.(
      const (fun () -> run)
      $ domains_term $ steps_arg 1500 $ seed_arg $ csv_arg $ resilience_term
      $ preflight_term $ obs_term)

(* regression *)

let regression_cmd =
  let run steps seed csv resilience pf obs =
    obs_setup obs;
    run_preflight pf "regression";
    let store, reports, seconds =
      Regression.train ~steps ~guard:resilience.guard
        ?persist:resilience.persist ?store:(initial_store resilience)
        (Prng.key seed)
    in
    let a, ba, br, bar = Regression.coefficient_means store in
    Printf.printf "a=%.2f bA=%.2f bR=%.2f bAR=%.2f  (%.2f s)\n" a ba br bar
      seconds;
    Printf.printf "ELBO/datum %.3f\n"
      (Regression.final_elbo_per_datum store (Prng.key (seed + 1)));
    print_series csv reports;
    finish_run resilience store;
    obs_finish obs
  in
  Cmd.v
    (Cmd.info "regression"
       ~doc:"Bayesian linear regression (Appendix D.2).")
    Term.(
      const (fun () -> run)
      $ domains_term $ steps_arg 1500 $ seed_arg $ csv_arg $ resilience_term
      $ preflight_term $ obs_term)

(* vae *)

let positive_int_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n > 0 -> Ok n
    | Some _ -> Error (`Msg "expected a positive integer")
    | None -> Error (`Msg (Printf.sprintf "invalid integer %S" s))
  in
  Arg.conv (parse, fun ppf n -> Format.fprintf ppf "%d" n)

let shards_arg =
  Arg.(
    value & opt positive_int_conv 1
    & info [ "shards" ]
        ~doc:
          "Data-parallel shards per gradient step: the minibatch is \
           split into $(docv) contiguous slices, each estimated on its \
           own tape on the domain pool and combined with a \
           deterministic tree reduction (bit-reproducible across \
           $(b,--domains) for a fixed shard count). 1 keeps the \
           historical single-tape trajectory.")

let remat_arg =
  Arg.(
    value & flag
    & info [ "remat" ]
        ~doc:
          "Gradient checkpointing: discard each sample's (or shard's) \
           tape segment after the forward pass and rematerialize it \
           during backward. Gradients are bit-identical; peak live \
           tape and major-heap traffic drop, at the cost of a second \
           forward pass.")

let vae_cmd =
  let run steps batch shards remat seed csv resilience pf obs =
    obs_setup obs;
    run_preflight pf "vae";
    let store, reports =
      Vae.train ~steps ~batch ~shards ~remat ~guard:resilience.guard
        ?persist:resilience.persist ?store:(initial_store resilience)
        (Prng.key seed)
    in
    (* Faulted (OOM-skipped) steps report nothing, and --steps 0 resume
       runs report nothing at all — print the last report that exists. *)
    (match List.rev reports with
    | [] ->
      Printf.printf "no completed steps (%d requested, batch %d)\n" steps
        batch
    | r :: _ ->
      Printf.printf "final ELBO/datum %.2f after %d steps (batch %d)\n"
        r.Train.objective steps batch);
    print_series csv reports;
    finish_run resilience store;
    obs_finish obs
  in
  Cmd.v
    (Cmd.info "vae" ~doc:"Sprite-digit VAE (Table 1 workload).")
    Term.(
      const (fun () -> run)
      $ domains_term $ steps_arg 300
      $ Arg.(value & opt int 64 & info [ "batch" ] ~doc:"Batch size.")
      $ shards_arg $ remat_arg $ seed_arg $ csv_arg $ resilience_term
      $ preflight_term $ obs_term)

(* air *)

let strategy_conv =
  let parse = function
    | "re" | "reinforce" -> Ok Air.RE
    | "bl" | "baselines" -> Ok Air.RE_BL
    | "enum" -> Ok Air.EN
    | "mvd" -> Ok Air.MV
    | s -> Error (`Msg (Printf.sprintf "unknown strategy %S" s))
  in
  Arg.conv
    (parse, fun ppf s -> Format.pp_print_string ppf (Air.strategy_name s))

let air_cmd =
  let run strategy epochs images seed resilience pf obs =
    obs_setup obs;
    run_preflight pf "air";
    let data_images, _ = Data.air_batch (Prng.key (seed + 10)) images in
    let eval_images, eval_counts = Data.air_batch (Prng.key (seed + 11)) 64 in
    let store =
      match initial_store resilience with
      | Some s -> s
      | None -> Store.create ()
    in
    Air.register store (Prng.key seed);
    let optim = Optim.adam ~lr:1e-3 () in
    let baselines = Air.make_baselines () in
    for epoch = 1 to epochs do
      let obj, dt =
        Air.train_epoch ~pres:strategy ~pos:strategy ~guard:resilience.guard
          ~store ~optim ~baselines ~objective:Air.Elbo ~images:data_images
          ~batch:16
          (Prng.fold_in (Prng.key seed) epoch)
      in
      let acc =
        Air.count_accuracy store eval_images eval_counts
          (Prng.fold_in (Prng.key (seed + 12)) epoch)
      in
      Printf.printf "epoch %d: ELBO %8.2f  acc %.2f  %.2f s\n%!" epoch obj acc
        dt
    done;
    finish_run resilience store;
    obs_finish obs
  in
  Cmd.v
    (Cmd.info "air" ~doc:"Attend-Infer-Repeat scenes (Table 2 workload).")
    Term.(
      const (fun () -> run)
      $ domains_term
      $ Arg.(
          value & opt strategy_conv Air.MV
          & info [ "strategy" ] ~doc:"re|bl|enum|mvd")
      $ Arg.(value & opt int 5 & info [ "epochs" ] ~doc:"Training epochs.")
      $ Arg.(value & opt int 192 & info [ "images" ] ~doc:"Training scenes.")
      $ seed_arg $ resilience_term $ preflight_term $ obs_term)

(* profile *)

let profile_target_conv =
  Arg.enum
    [ ("cone", `Cone); ("coin", `Coin); ("regression", `Regression);
      ("vae", `Vae) ]

let profile_cmd =
  let run () target objective steps batch shards remat compiled seed json
      trace =
    (* Recording is on for the whole run; the trace file (when given)
       receives every sampled event, and the aggregate tables go to
       stdout at the end. The parallel counters are cumulative
       process-wide — reset them here so the gauges report THIS run's
       figures, not leftovers from warm-up or a previous profile. *)
    Parallel.reset_counters ();
    (match trace with
    | Some path -> open_trace path
    | None -> Obs.configure ~enabled:true ());
    let name =
      match target with
      | `Cone ->
        ignore (Cone.train ~steps objective (Prng.key seed));
        Printf.sprintf "cone (%s)" (Cone.objective_name objective)
      | `Coin ->
        ignore (Coin.train ~steps (Prng.key seed));
        "coin"
      | `Regression ->
        ignore (Regression.train ~steps (Prng.key seed));
        "regression"
      | `Vae ->
        ignore (Vae.train ~steps ~batch ~shards ~remat ~compiled (Prng.key seed));
        Printf.sprintf "vae (batch %d%s%s%s)" batch
          (if shards > 1 then Printf.sprintf ", %d shards" shards else "")
          (if remat then ", remat" else "")
          (if compiled then ", compiled" else "")
    in
    obs_gauges ();
    if json then print_endline (Obs.report_json ())
    else begin
      Printf.printf "profile: %s, %d steps, seed %d\n" name steps seed;
      Obs.report_human Format.std_formatter
    end;
    if trace <> None then begin
      Obs.flush ();
      Obs.shutdown ()
    end
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Train a workload with observability enabled and print the \
          per-phase time/alloc breakdown, the metric tables, and the \
          per-address estimator-variance ranking (noisiest gradient \
          sites first). See docs/OBSERVABILITY.md for how to read the \
          tables.")
    Term.(
      const run
      $ domains_term
      $ Arg.(
          required
          & pos 0 (some profile_target_conv) None
          & info [] ~docv:"TARGET" ~doc:"cone|coin|regression|vae")
      $ Arg.(
          value
          & opt cone_objective_conv (Cone.Iwhvi 5)
          & info [ "objective" ]
              ~doc:
                "Cone objective (elbo|iwelbo|hvi|iwhvi|diwhvi). The \
                 default iwhvi guide mixes REPARAM and REINFORCE sites, \
                 which is what makes the estimator ranking interesting.")
      $ steps_arg 150
      $ Arg.(value & opt int 64 & info [ "batch" ] ~doc:"VAE batch size.")
      $ shards_arg $ remat_arg
      $ Arg.(
          value & flag
          & info [ "compiled" ]
              ~doc:
                "Train the VAE through its staged execution plans: the \
                 report then shows the one-time compile/* spans and the \
                 plan-cache hit/miss counters (staging amortization).")
      $ seed_arg
      $ Arg.(
          value & flag
          & info [ "json" ]
              ~doc:"Emit the report as one JSON object on stdout.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "trace" ] ~docv:"FILE"
              ~doc:"Also stream events to $(docv) as JSON Lines."))

(* trace-lint *)

let trace_lint_cmd =
  let run () file =
    match Obs.validate_jsonl file with
    | Ok n -> Printf.printf "%s: %d event line(s), all valid JSON\n" file n
    | Error msg ->
      Printf.eprintf "%s: %s\n" file msg;
      exit 1
  in
  Cmd.v
    (Cmd.info "trace-lint"
       ~doc:
         "Validate a $(b,--trace) JSONL file: every non-empty line must \
          parse as a JSON object. Exits non-zero at the first offending \
          line (used by the CI obs-smoke step).")
    Term.(
      const run $ const ()
      $ Arg.(
          required
          & pos 0 (some file) None
          & info [] ~docv:"FILE" ~doc:"Trace file to validate."))

(* compile *)

(* Analysis budgets must be positive: zero fuel would refuse every
   program with a misleading truncation diagnostic, and a zero probe
   width would explore no paths at all. Reject loudly instead. *)
let validate_budget flag v =
  if v <= 0 then begin
    Printf.eprintf "ppvi: --%s must be a positive integer (got %d)\n" flag v;
    exit 2
  end

let compile_cmd =
  let contains hay needle =
    needle = ""
    ||
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let run () json fuel width filter =
    validate_budget "fuel" fuel;
    validate_budget "max-width" width;
    let selected =
      List.filter
        (fun e -> contains e.Preflight.name filter)
        Preflight.entries
    in
    if selected = [] then begin
      Printf.eprintf "compile: no registry entry matches %S\n" filter;
      exit 1
    end;
    (* Each registry target contributes its packed program(s): a pair
       stages model and guide separately, like the objectives do. *)
    let programs =
      List.concat_map
        (fun e ->
          match e.Preflight.make () with
          | Check.Program p -> [ (e.Preflight.name, p) ]
          | Check.Pair { model; guide } ->
            [ (e.Preflight.name ^ "/model", model);
              (e.Preflight.name ^ "/guide", guide) ]
          | exception exn ->
            Printf.eprintf "compile: %s: target construction failed: %s\n"
              e.Preflight.name (Printexc.to_string exn);
            [])
        selected
    in
    let results =
      List.map
        (fun (id, p) -> (id, Compile.compile ~fuel ~max_width:width ~id p))
        programs
    in
    if json then begin
      print_string "[";
      List.iteri
        (fun i (id, r) ->
          if i > 0 then print_string ",";
          print_string (Compile.to_json ~id r))
        results;
      print_endline "]"
    end
    else begin
      List.iter (fun (id, r) -> print_string (Compile.describe ~id r)) results;
      let compiled =
        List.length
          (List.filter (fun (_, r) -> match r with Compile.Compiled _ -> true | _ -> false) results)
      in
      Printf.printf "%d/%d programs compiled (the rest run on the interpreter)\n"
        compiled (List.length results)
    end
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "Stage the built-in generative programs into straight-line \
          execution plans and print them: the slot table, the fused \
          per-site kernels, sequential plate fallbacks, and PV501 \
          refusals for programs whose structure is not static (see \
          docs/COMPILATION.md).")
    Term.(
      const run $ const ()
      $ Arg.(
          value & flag
          & info [ "json" ] ~doc:"Emit a JSON array of plans on stdout.")
      $ Arg.(
          value & opt int 20000
          & info [ "fuel" ] ~doc:"Structure-discovery node budget.")
      $ Arg.(
          value & opt int 4
          & info [ "max-width" ] ~doc:"Probe values per sample site.")
      $ Arg.(
          value & pos 0 string ""
          & info [] ~docv:"TARGET"
              ~doc:"Registry-name substring filter (default: all)."))

(* check *)

let check_cmd =
  (* The static shape table for one registry entry: every reachable
     site's inferred abstract shape (symbolic plate/iid axes included).
     Construction failures surface as an empty table — the analysis
     report already carries the PV390 diagnostic. *)
  let shapes_of (e : Preflight.entry) ~fuel ~width =
    match e.Preflight.make () with
    | target -> Check.site_shapes ~fuel ~max_width:width target
    | exception _ -> []
  in
  let run () json fuel width shapes filter =
    validate_budget "fuel" fuel;
    validate_budget "width" width;
    let results = Preflight.run_all ~fuel ~max_width:width ~filter () in
    if json then
      if shapes then begin
        let buf = Buffer.create 1024 in
        Buffer.add_string buf "{\"reports\":";
        Buffer.add_string buf (Preflight.results_to_json results);
        Buffer.add_string buf ",\"shapes\":[";
        List.iteri
          (fun i (e, _) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf
              (Printf.sprintf "{\"target\":\"%s\",\"sites\":["
                 e.Preflight.name);
            List.iteri
              (fun j (addr, shp) ->
                if j > 0 then Buffer.add_char buf ',';
                Buffer.add_string buf
                  (Printf.sprintf "{\"address\":\"%s\",\"shape\":\"%s\"}" addr
                     (Shape.to_string shp)))
              (shapes_of e ~fuel ~width);
            Buffer.add_string buf "]}")
          results;
        Buffer.add_string buf "]}";
        print_endline (Buffer.contents buf)
      end
      else print_endline (Preflight.results_to_json results)
    else begin
      Preflight.print_human Format.std_formatter results;
      if shapes then begin
        Printf.printf "static site shapes:\n";
        List.iter
          (fun (e, _) ->
            match shapes_of e ~fuel ~width with
            | [] -> ()
            | sites ->
              Printf.printf "  %s\n" e.Preflight.name;
              List.iter
                (fun (addr, shp) ->
                  Printf.printf "    %-24s %s\n" addr (Shape.to_string shp))
                sites)
          results
      end;
      let failed = List.filter (fun (e, r) -> not (Preflight.entry_ok e r)) results in
      Printf.printf "%d/%d targets ok\n"
        (List.length results - List.length failed)
        (List.length results)
    end;
    if not (Preflight.all_ok results) then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically analyze the built-in generative programs: strategy \
          validity, address discipline, and support/shape pre-flight lints \
          (see docs/DIAGNOSTICS.md for the code catalogue).")
    Term.(
      const run
      $ domains_term
      $ Arg.(
          value & flag
          & info [ "json" ] ~doc:"Emit a JSON array of reports on stdout.")
      $ Arg.(
          value & opt int 20000
          & info [ "fuel" ] ~docv:"N"
            ~doc:"Exploration budget (program nodes visited per target).")
      $ Arg.(
          value & opt int 4
          & info [ "width" ] ~docv:"N"
            ~doc:"Maximum probe values per sample site.")
      $ Arg.(
          value & flag
          & info [ "shapes" ]
              ~doc:
                "Also print the statically inferred shape of every \
                 reachable sample site (symbolic plate/iid batch axes \
                 shown as N@addr / B@addr).")
      $ Arg.(
          value & opt string ""
          & info [ "target" ] ~docv:"SUBSTR"
            ~doc:"Only analyze registry targets whose name contains $(docv)."))

(* chaos *)

(* The crash-recovery harness (docs/RESILIENCE.md): establish an
   uninterrupted reference run, then repeatedly fork a child that
   trains the same workload with rotated checkpoints under a fault
   plan that SIGKILLs it at a seeded step, and finally resume once
   more in-process and require the final parameters to be
   bit-identical to the reference. *)

let chaos_target_conv = Arg.enum [ ("coin", `Coin); ("cone", `Cone) ]

let store_bits store =
  List.map
    (fun name ->
      let x = Store.tensor store name in
      ( name,
        Array.init (Tensor.size x) (fun i ->
            Int64.bits_of_float (Tensor.get_flat x i)) ))
    (Store.names store)

let first_mismatch a b =
  let rec go = function
    | [], [] -> None
    | (n, _) :: _, [] | [], (n, _) :: _ -> Some n
    | (n1, x) :: ra, (n2, y) :: rb ->
      if n1 <> n2 || x <> y then Some n1 else go (ra, rb)
  in
  go (a, b)

let clean_dir dir =
  if Sys.file_exists dir then
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir)

let ckpt_index f =
  if String.length f > 5 && String.sub f 0 5 = "ckpt." then
    int_of_string_opt (String.sub f 5 (String.length f - 5))
  else None

(* Chop the newest checkpoint in half, so the final resume must detect
   the corruption and fall back to an older one. *)
let truncate_newest dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> None
  | files -> (
    let newest =
      Array.to_list files
      |> List.filter_map (fun f ->
             Option.map (fun i -> (i, f)) (ckpt_index f))
      |> List.sort (fun (a, _) (b, _) -> compare b a)
    in
    match newest with
    | [] -> None
    | (_, f) :: _ ->
      let path = Filename.concat dir f in
      let len = (Unix.stat path).Unix.st_size in
      Unix.truncate path (len / 2);
      Some path)

let chaos_cmd =
  let run () target steps seed kills every keep spec dir plan_out
      corrupt_latest trace =
    if Parallel.domains () > 1 then begin
      (* kill cycles fork, and OCaml forbids fork once worker domains
         exist; chaos results are domain-count-invariant anyway *)
      Printf.eprintf "ppvi chaos: incompatible with --domains > 1\n";
      exit 1
    end;
    let key = Prng.key seed in
    let train ?persist () =
      match target with
      | `Coin ->
        let s, _, _ = Coin.train ~steps ~samples:2 ?persist key in
        s
      | `Cone ->
        let s, _ = Cone.train ~steps ?persist Cone.Elbo key in
        s
    in
    Printf.printf "chaos %s: %d steps, checkpoint every %d, %d kill cycle(s)\n%!"
      (match target with `Coin -> "coin" | `Cone -> "cone")
      steps every kills;
    let reference = store_bits (train ()) in
    let dir =
      match dir with
      | Some d -> d
      | None ->
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "ppvi-chaos-%d" (Unix.getpid ()))
    in
    clean_dir dir;
    let cfg = Persist.cfg ~every ~keep dir in
    let plan_for cycle =
      let spec' =
        let kill = Printf.sprintf "kill-in=1..%d" (max 1 (steps - 1)) in
        match spec with None -> kill | Some s -> s ^ " " ^ kill
      in
      match Fault.plan_of_string ~seed:(seed + (97 * cycle)) spec' with
      | Ok p -> p
      | Error msg ->
        Printf.eprintf "ppvi: bad --fault spec: %s\n" msg;
        exit 1
    in
    let plans = List.init kills (fun i -> plan_for (i + 1)) in
    (match plan_out with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc
        (Printf.sprintf "{\"cycles\": [%s]}\n"
           (String.concat ", " (List.map Fault.plan_to_json plans)));
      close_out oc;
      Printf.printf "fault plans written to %s\n%!" path);
    List.iteri
      (fun i plan ->
        flush stdout;
        flush stderr;
        match Unix.fork () with
        | 0 ->
          (* The child: train with checkpointing under the plan; the
             plan SIGKILLs it at its chosen step (unless a resumed run
             is already past that step). Never return to the parent's
             cmdliner driver. *)
          Fault.install plan;
          (try ignore (train ~persist:cfg ()) with _ -> ());
          Unix._exit 0
        | pid -> (
          let _, status = Unix.waitpid [] pid in
          let kill =
            match Fault.kill_step plan with
            | Some k -> string_of_int k
            | None -> "?"
          in
          match status with
          | Unix.WSIGNALED s when s = Sys.sigkill ->
            Printf.printf "cycle %d: killed at step %s, state on disk\n%!"
              (i + 1) kill
          | Unix.WEXITED 0 ->
            Printf.printf
              "cycle %d: run completed (kill step %s behind the resume \
               point)\n%!"
              (i + 1) kill
          | _ ->
            Printf.eprintf "ppvi chaos: unexpected child status\n";
            exit 1))
      plans;
    if corrupt_latest then (
      match truncate_newest dir with
      | Some path -> Printf.printf "truncated newest checkpoint %s\n%!" path
      | None -> ());
    (match trace with Some path -> open_trace path | None -> ());
    let final = store_bits (train ~persist:cfg ()) in
    (match trace with
    | Some _ ->
      Obs.flush ();
      Obs.shutdown ()
    | None -> ());
    match first_mismatch reference final with
    | None ->
      Printf.printf
        "chaos: PASS — final parameters bit-identical to the uninterrupted \
         run (%d tensors)\n"
        (List.length reference)
    | Some name ->
      Printf.eprintf
        "chaos: FAIL — parameter %S differs from the uninterrupted run\n"
        name;
      exit 1
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Crash-recovery harness: train a workload with rotated \
          checkpoints while a seeded fault plan SIGKILLs the process \
          mid-run (repeatedly), then resume and verify the final \
          parameters are bit-identical to an uninterrupted run. See \
          docs/RESILIENCE.md.")
    Term.(
      const (fun () -> run ())
      $ domains_term
      $ Arg.(
          required
          & pos 0 (some chaos_target_conv) None
          & info [] ~docv:"TARGET" ~doc:"coin|cone")
      $ steps_arg 60 $ seed_arg
      $ Arg.(
          value & opt int 2
          & info [ "kills" ] ~docv:"N"
              ~doc:"Number of SIGKILL-and-resume cycles.")
      $ Arg.(
          value & opt int 7
          & info [ "every" ] ~docv:"N" ~doc:"Checkpoint every $(docv) steps.")
      $ Arg.(
          value & opt int 3
          & info [ "keep" ] ~docv:"N" ~doc:"Checkpoint rotation depth.")
      $ Arg.(
          value
          & opt (some fault_spec_conv) None
          & info [ "fault" ] ~docv:"SPEC"
              ~doc:
                "Extra fault spec merged into each cycle's plan (the \
                 kill schedule is added automatically).")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "dir" ] ~docv:"DIR"
              ~doc:
                "Checkpoint directory (default: a fresh temp directory; \
                 cleared before the first cycle).")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "plan-out" ] ~docv:"FILE"
              ~doc:
                "Write the per-cycle fault plans as one JSON object (the \
                 CI artifact that makes a failing run replayable).")
      $ Arg.(
          value & flag
          & info [ "corrupt-latest" ]
              ~doc:
                "Truncate the newest checkpoint before the final resume, \
                 forcing the corruption-fallback path.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "trace" ] ~docv:"FILE"
              ~doc:
                "Stream the final resume's observability events to \
                 $(docv) as JSON Lines."))

(* info *)

let info_cmd =
  let run () =
    print_endline
      "ppvi: programmable variational inference (PLDI 2024 reproduction)";
    let count register =
      let store = Store.create () in
      register store (Prng.key 0);
      Store.parameter_count store
    in
    Printf.printf "workload parameter counts:\n";
    Printf.printf "  VAE   %6d\n" (count Vae.register);
    Printf.printf "  AIR   %6d\n" (count Air.register);
    Printf.printf "  SSVAE %6d\n" (count Ssvae.register);
    Printf.printf "  CVAE  %6d\n" (count Cvae.register);
    Printf.printf "data: %dx%d sprites, %dx%d AIR canvases (max %d objects)\n"
      Data.sprite_side Data.sprite_side Data.canvas_side Data.canvas_side
      Data.max_objects
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Print the system inventory.")
    Term.(const run $ const ())

(* version *)

let version_cmd =
  let run () = print_endline Proto.version_string in
  Cmd.v
    (Cmd.info "version"
       ~doc:
         "Print the build version and the serve wire-schema generation \
          (the same pair exchanged in the $(b,ppvi serve) handshake and \
          $(b,health) reply, so client/server mismatches fail loudly).")
    Term.(const run $ const ())

(* serve / client *)

let transport_term =
  let make socket host port =
    match (socket, port) with
    | Some path, None -> `Unix path
    | None, Some p -> `Tcp (host, p)
    | Some _, Some _ ->
      Printf.eprintf "ppvi: --socket and --port are mutually exclusive\n";
      exit 2
    | None, None -> `Unix "/tmp/ppvi.sock"
  in
  Term.(
    const make
    $ Arg.(
        value
        & opt (some string) None
        & info [ "socket" ] ~docv:"PATH"
            ~doc:
              "Serve (or connect) on a Unix-domain socket at $(docv) \
               (default /tmp/ppvi.sock).")
    $ Arg.(
        value
        & opt string "127.0.0.1"
        & info [ "host" ] ~docv:"ADDR"
            ~doc:"TCP address for --port (default 127.0.0.1).")
    $ Arg.(
        value
        & opt (some positive_int_conv) None
        & info [ "port" ] ~docv:"PORT" ~doc:"Serve (or connect) over TCP."))

let serve_fault_term =
  let make fault fault_seed =
    match fault with
    | None -> Fault.clear ()
    | Some spec -> (
      match Fault.plan_of_string ~seed:fault_seed spec with
      | Ok plan -> Fault.install plan
      | Error msg ->
        Printf.eprintf "ppvi: bad --fault spec: %s\n" msg;
        exit 1)
  in
  Term.(
    const make
    $ Arg.(
        value
        & opt (some fault_spec_conv) None
        & info [ "fault" ] ~docv:"SPEC"
            ~doc:
              "Install a deterministic fault-injection plan in the serving \
               path: io-error faults surface as $(b,fault) error replies at \
               admission and skipped checkpoint reloads; delay/oom faults \
               fire per executed batch (see docs/RESILIENCE.md).")
    $ Arg.(
        value & opt int 0
        & info [ "fault-seed" ] ~docv:"N"
            ~doc:"Seed for the --fault plan's own PRNG stream."))

(* Socket-layer failures (no daemon listening, unbindable path, peer
   gone mid-call) are expected operational errors: one clean line and
   exit 1, never an uncaught exception. *)
let socket_errors f =
  try f () with
  | Unix.Unix_error (e, fn, arg) ->
    Printf.eprintf "ppvi: %s%s: %s\n" fn
      (if arg = "" then "" else " " ^ arg)
      (Unix.error_message e);
    exit 1
  | Failure msg ->
    Printf.eprintf "ppvi: %s\n" msg;
    exit 1

let serve_cmd =
  let run () () transport () max_batch max_wait_us queue_bound params_root
      pid_file obs =
   socket_errors @@ fun () ->
    obs_setup obs;
    Printf.printf "%s\n" Proto.version_string;
    (match transport with
    | `Unix path -> Printf.printf "serving on unix socket %s\n" path
    | `Tcp (host, port) -> Printf.printf "serving on %s:%d\n" host port);
    Printf.printf
      "coalescing: max-batch %d, max-wait %.0fus, queue bound %d\n%!" max_batch
      max_wait_us queue_bound;
    Serve.run
      {
        Serve.transport;
        max_batch;
        max_wait_us;
        queue_bound;
        params_root;
        pid_file;
      };
    Printf.printf "drained cleanly\n";
    obs_gauges ();
    obs_finish obs
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the inference daemon: score/sample/elbo/grad requests over a \
          length-prefixed JSON protocol, coalescing concurrent same-model \
          requests into one batched execution (docs/SERVING.md). SIGTERM \
          drains gracefully: queued requests finish, later ones get \
          explicit $(b,draining) replies.")
    Term.(
      const run $ const () $ domains_term $ transport_term $ serve_fault_term
      $ Arg.(
          value & opt positive_int_conv 64
          & info [ "max-batch" ] ~docv:"N"
              ~doc:"Most requests coalesced into one batched execution.")
      $ Arg.(
          value & opt float 200.
          & info [ "max-wait-us" ] ~docv:"US"
              ~doc:
                "How long the executor lingers for more requests before \
                 running a non-full batch, in microseconds. 0 disables \
                 coalescing latency entirely.")
      $ Arg.(
          value & opt positive_int_conv 256
          & info [ "queue-bound" ] ~docv:"N"
              ~doc:
                "Admission bound: requests beyond this queue depth are shed \
                 with an $(b,overloaded) reply instead of queueing.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "params-dir" ] ~docv:"DIR"
              ~doc:
                "Warm-start each model $(i,m) from the rotated checkpoints \
                 in $(docv)/$(i,m) (Store.load_latest) and hot-reload its \
                 parameters when the $(b,latest) pointer rotates.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "pid-file" ] ~docv:"FILE"
              ~doc:"Write the daemon pid to $(docv) (drain drills).")
      $ obs_term)

let client_cmd =
  let run () transport clients requests model seed check stats_only kill_after
      pid_file =
   socket_errors @@ fun () ->
    if stats_only then begin
      let conn = Serve.Client.connect transport in
      let version, schema, models = Serve.Client.server_info conn in
      Printf.printf "server %s (schema %d), models: %s\n" version schema
        (String.concat ", " models);
      (match Serve.Client.call conn Proto.Stats with
      | Proto.R_stats s -> print_endline (Obs.Json.to_string s)
      | _ -> prerr_endline "unexpected stats reply");
      Serve.Client.close conn
    end
    else begin
      let kill_after =
        match (kill_after, pid_file) with
        | Some n, Some pf -> (
          match int_of_string_opt (String.trim (In_channel.with_open_text pf In_channel.input_all)) with
          | Some pid -> Some (n, pid)
          | None ->
            Printf.eprintf "ppvi: cannot read a pid from %s\n" pf;
            exit 2)
        | Some _, None ->
          Printf.eprintf "ppvi: --kill-after requires --pid-file\n";
          exit 2
        | None, _ -> None
      in
      let report label r =
        Printf.printf
          "%s: sent %d ok %d overloaded %d draining %d deadline %d failed %d \
           lost %d in %.3fs\n"
          label r.Serve.lr_sent r.Serve.lr_ok r.Serve.lr_overloaded
          r.Serve.lr_draining r.Serve.lr_deadline r.Serve.lr_failed
          r.Serve.lr_lost r.Serve.lr_wall_s
      in
      let concurrent =
        Serve.run_load transport ~clients ~requests ~model ~seed ?kill_after ()
      in
      report "concurrent" concurrent;
      let failures = ref 0 in
      if concurrent.Serve.lr_sent = 0 then begin
        Printf.eprintf
          "ppvi client: no request was sent — is the server reachable?\n";
        incr failures
      end;
      if concurrent.Serve.lr_lost > 0 then begin
        Printf.eprintf
          "ppvi client: %d request(s) got no reply at all — a drain must \
           answer every accepted request\n"
          concurrent.Serve.lr_lost;
        incr failures
      end;
      if check then begin
        (* Sequential reference pass: one connection, one in-flight
           request, same global indices — every batch the server forms
           has a single row. Bit-identical replies are the coalescing
           correctness gate. *)
        let sequential =
          Serve.run_load transport ~clients:1 ~requests:(clients * requests)
            ~model ~seed ()
        in
        report "sequential" sequential;
        let n = Serve.mismatches sequential concurrent in
        if n > 0 then begin
          Printf.eprintf
            "ppvi client: %d reply mismatch(es) between the sequential and \
             concurrent passes\n"
            n;
          incr failures
        end
        else
          Printf.printf
            "bit-identity: %d replies identical across both passes\n"
            (List.length sequential.Serve.lr_values)
      end;
      if !failures > 0 then exit 1
    end
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Load-drive a running $(b,ppvi serve) daemon: N client threads \
          with one connection each, deterministic score/elbo request \
          streams, tallies of shed/drained/lost requests, an optional \
          sequential bit-identity check (--check), and a SIGTERM drain \
          drill (--kill-after with --pid-file).")
    Term.(
      const run $ const () $ transport_term
      $ Arg.(
          value & opt positive_int_conv 8
          & info [ "clients" ] ~docv:"N" ~doc:"Concurrent client threads.")
      $ Arg.(
          value & opt positive_int_conv 16
          & info [ "requests" ] ~docv:"N" ~doc:"Requests per client.")
      $ Arg.(
          value & opt string "chain"
          & info [ "model" ] ~docv:"NAME"
              ~doc:"Servable model to target (coin, cone, chain).")
      $ Arg.(
          value & opt int 0
          & info [ "seed" ] ~docv:"N" ~doc:"Seed for the request stream.")
      $ Arg.(
          value & flag
          & info [ "check" ]
              ~doc:
                "After the concurrent pass, run the same request stream \
                 sequentially and require bit-identical replies (exits \
                 non-zero on any mismatch).")
      $ Arg.(
          value & flag
          & info [ "stats" ]
              ~doc:
                "Just print the server's handshake info and its stats \
                 endpoint as JSON (the $(b,ppvi profile) dashboard \
                 companion), then exit.")
      $ Arg.(
          value
          & opt (some positive_int_conv) None
          & info [ "kill-after" ] ~docv:"N"
              ~doc:
                "SIGTERM the server (pid from --pid-file) after $(docv) \
                 replies: the drain drill. Every already-sent request must \
                 still get a reply — the tally's $(b,lost) column must \
                 stay 0.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "pid-file" ] ~docv:"FILE"
              ~doc:"The server's --pid-file (for --kill-after)."))

let () =
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "ppvi" ~version:Proto.build_version
             ~doc:"Programmable variational inference workloads.")
          [ cone_cmd; coin_cmd; regression_cmd; vae_cmd; air_cmd; profile_cmd;
            chaos_cmd; trace_lint_cmd; compile_cmd; check_cmd; info_cmd;
            version_cmd; serve_cmd; client_cmd ]))
