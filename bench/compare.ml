(* Benchmark regression gate: compare the tracked medians of a fresh
   BENCH_*.json against a committed baseline and fail on regressions.

     compare.exe BASELINE CURRENT [--threshold PCT]
                 [--overhead NAME:REF:PCT] [--speedup NAME:REF:FACTOR]
                 [--only-gates]

   Entries are matched on (name, parameter value); an entry present in
   the baseline but missing from the current run is itself a failure
   (a silently dropped benchmark would otherwise pass forever). The
   parser is deliberately narrow: it reads exactly the line-oriented
   format `write_json` in main.ml emits, so no JSON dependency is
   needed.

   `--overhead NAME:REF:PCT` is an intra-file gate on CURRENT: for
   every parameter value where both NAME and REF appear, NAME's median
   must stay within PCT percent of REF's median. Used to bound the
   cost of instrumented re-runs (e.g. vae_grad_step_obs vs
   vae_grad_step) without needing a separate baseline file.

   `--speedup NAME:REF:FACTOR` is a cross-file gate: NAME's median in
   CURRENT must be at least FACTOR times faster than REF's median in
   BASELINE (matched on parameter value). Used to assert that the
   staged-compilation gradient step holds its 2x win over the
   committed pre-staging interpreter baseline. With `--only-gates`
   the baseline-coverage regression walk is skipped, so BASELINE and
   CURRENT may track different entry sets. *)

type entry = {
  name : string;
  pkey : string;
  pval : int;
  median_ms : float;
}

let parse_entry line =
  try
    Scanf.sscanf line " { \"name\": %S, %S: %d, \"mean_ms\": %f, \
                       \"stddev_ms\": %f, \"median_ms\": %f"
      (fun name pkey pval _mean _std median ->
        Some { name; pkey; pval; median_ms = median })
  with Scanf.Scan_failure _ | End_of_file | Failure _ -> None

let read_entries path =
  let ic =
    try open_in path
    with Sys_error msg ->
      Printf.eprintf "compare: cannot open %s: %s\n%!" path msg;
      exit 2
  in
  let entries = ref [] in
  (try
     while true do
       match parse_entry (input_line ic) with
       | Some e -> entries := e :: !entries
       | None -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !entries

(* Cross-file speedup gate: NAME (current) must be >= factor x faster
   than REF (baseline). *)
let check_speedup ~baseline ~current ~name ~ref_name ~factor =
  let subjects = List.filter (fun e -> e.name = name) current in
  if subjects = [] then (
    Printf.printf "%-28s missing from current run  FAIL\n" name;
    true)
  else
    List.fold_left
      (fun failed s ->
        match
          List.find_opt
            (fun r -> r.name = ref_name && r.pval = s.pval)
            baseline
        with
        | None ->
            Printf.printf "%-28s %s=%-7d no baseline %s entry  FAIL\n" s.name
              s.pkey s.pval ref_name;
            true
        | Some r ->
            let speedup = r.median_ms /. s.median_ms in
            let bad = speedup < factor in
            Printf.printf "%-28s %s=%-7d %12.4f %12.4f %7.2fx  %s\n"
              (s.name ^ " vs " ^ ref_name)
              s.pkey s.pval r.median_ms s.median_ms speedup
              (if bad then Printf.sprintf "FAIL (< %.2fx)" factor else "ok")
            |> ignore;
            failed || bad)
      false subjects

(* Gate NAME's medians against REF's within a single entry list. *)
let check_overhead entries ~name ~ref_name ~pct =
  let of_name n = List.filter (fun e -> e.name = n) entries in
  let subjects = of_name name in
  if subjects = [] then (
    Printf.printf "%-28s missing from current run  FAIL\n" name;
    true)
  else
    List.fold_left
      (fun failed s ->
        match
          List.find_opt (fun r -> r.pval = s.pval) (of_name ref_name)
        with
        | None ->
            Printf.printf "%-28s %s=%-7d no %s entry to compare  FAIL\n"
              s.name s.pkey s.pval ref_name;
            true
        | Some r ->
            let delta_pct =
              (s.median_ms -. r.median_ms) /. r.median_ms *. 100.
            in
            let bad = delta_pct > pct in
            Printf.printf "%-28s %s=%-7d %12.4f %12.4f %+8.1f%%  %s\n"
              (s.name ^ " vs " ^ ref_name)
              s.pkey s.pval r.median_ms s.median_ms delta_pct
              (if bad then "FAIL" else "ok");
            failed || bad)
      false subjects

let () =
  let threshold = ref 15.0 in
  let overheads = ref [] in
  let speedups = ref [] in
  let only_gates = ref false in
  let paths = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--threshold" :: v :: rest ->
        threshold := float_of_string v;
        parse_args rest
    | "--only-gates" :: rest ->
        only_gates := true;
        parse_args rest
    | "--speedup" :: v :: rest ->
        (match String.split_on_char ':' v with
        | [ name; ref_name; factor ] -> (
            match float_of_string_opt factor with
            | Some factor -> speedups := (name, ref_name, factor) :: !speedups
            | None ->
                Printf.eprintf "compare: bad --speedup factor %S\n%!" factor;
                exit 2)
        | _ ->
            Printf.eprintf
              "compare: --speedup expects NAME:REF:FACTOR, got %S\n%!" v;
            exit 2);
        parse_args rest
    | "--overhead" :: v :: rest ->
        (match String.split_on_char ':' v with
        | [ name; ref_name; pct ] -> (
            match float_of_string_opt pct with
            | Some pct -> overheads := (name, ref_name, pct) :: !overheads
            | None ->
                Printf.eprintf "compare: bad --overhead percent %S\n%!" pct;
                exit 2)
        | _ ->
            Printf.eprintf
              "compare: --overhead expects NAME:REF:PCT, got %S\n%!" v;
            exit 2);
        parse_args rest
    | p :: rest ->
        paths := p :: !paths;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let baseline_path, current_path =
    match List.rev !paths with
    | [ b; c ] -> (b, c)
    | _ ->
        Printf.eprintf
          "usage: compare.exe BASELINE CURRENT [--threshold PCT] \
           [--overhead NAME:REF:PCT] [--speedup NAME:REF:FACTOR] \
           [--only-gates]\n%!";
        exit 2
  in
  let baseline = read_entries baseline_path in
  let current = read_entries current_path in
  if baseline = [] then (
    Printf.eprintf "compare: no entries parsed from %s\n%!" baseline_path;
    exit 2);
  let failed = ref false in
  Printf.printf "%-28s %10s %12s %12s %9s\n" "benchmark" "param"
    "baseline_ms" "current_ms" "delta";
  if not !only_gates then
  List.iter
    (fun b ->
      let found =
        List.find_opt
          (fun c -> c.name = b.name && c.pval = b.pval)
          current
      in
      match found with
      | None ->
          failed := true;
          Printf.printf "%-28s %s=%-7d missing from current run  FAIL\n"
            b.name b.pkey b.pval
      | Some c ->
          let delta_pct =
            (c.median_ms -. b.median_ms) /. b.median_ms *. 100.
          in
          let verdict = if delta_pct > !threshold then "FAIL" else "ok" in
          if delta_pct > !threshold then failed := true;
          Printf.printf "%-28s %s=%-7d %12.4f %12.4f %+8.1f%%  %s\n" b.name
            b.pkey b.pval b.median_ms c.median_ms delta_pct verdict)
    baseline;
  List.iter
    (fun (name, ref_name, pct) ->
      if check_overhead current ~name ~ref_name ~pct then failed := true)
    (List.rev !overheads);
  List.iter
    (fun (name, ref_name, factor) ->
      if check_speedup ~baseline ~current ~name ~ref_name ~factor then
        failed := true)
    (List.rev !speedups);
  if !failed then (
    Printf.printf "regression: some tracked gates failed\n%!";
    exit 1)
  else if !only_gates then Printf.printf "all gates passed\n%!"
  else
    Printf.printf "all tracked medians within %.0f%% of baseline\n%!"
      !threshold
