(* Benchmark harness: one subcommand per table / figure of the paper,
   plus ablations and a Bechamel microbenchmark suite. `main.exe all`
   (the default) regenerates everything at a laptop-friendly scale;
   EXPERIMENTS.md records paper-vs-measured. *)

let hr title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let mean xs = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let std xs =
  let m = mean xs in
  Float.sqrt (mean (List.map (fun x -> (x -. m) ** 2.) xs))

let median xs =
  let arr = Array.of_list (List.sort Float.compare xs) in
  let n = Array.length arr in
  if n = 0 then Float.nan
  else if n mod 2 = 1 then arr.(n / 2)
  else 0.5 *. (arr.((n / 2) - 1) +. arr.(n / 2))

(* ------------------------------------------------------------------ *)
(* T1 (Table 1 / Fig 10): VAE gradient-estimate wall time, automated
   vs hand-coded, across batch sizes. *)

let t1 ~quick () =
  hr "Table 1 / Fig 10: VAE gradient estimate timing (ms), ours vs hand-coded";
  let store = Store.create () in
  Vae.register store (Prng.key 1);
  let batches = if quick then [ 64; 128; 256 ] else [ 64; 128; 256; 512; 1024 ] in
  let repeats = if quick then 5 else 15 in
  Printf.printf "%-12s %-18s %-18s %s\n" "Batch size" "Ours" "Hand coded"
    "Overhead";
  List.iter
    (fun batch ->
      let images, _ = Data.digit_batch (Prng.key 2) batch in
      let ours =
        List.init repeats (fun i ->
            let frame = Store.Frame.make store in
            let t0 = Unix.gettimeofday () in
            let s =
              Adev.expectation
                (Vae.elbo_per_datum frame images)
                (Prng.fold_in (Prng.key 3) i)
            in
            Ad.backward s;
            ignore (Store.Frame.grads frame);
            (Unix.gettimeofday () -. t0) *. 1000.)
      in
      let hand =
        List.init repeats (fun i ->
            let frame = Store.Frame.make store in
            let t0 = Unix.gettimeofday () in
            let s =
              Vae_hand.elbo_surrogate frame images (Prng.fold_in (Prng.key 3) i)
            in
            Ad.backward s;
            ignore (Store.Frame.grads frame);
            (Unix.gettimeofday () -. t0) *. 1000.)
      in
      Printf.printf "%-12d %6.2f +- %-8.2f %6.2f +- %-8.2f %5.1f%%\n%!" batch
        (mean ours) (std ours) (mean hand) (std hand)
        (100. *. ((mean ours /. mean hand) -. 1.)))
    batches

(* ------------------------------------------------------------------ *)
(* T2 (Table 2): AIR seconds per epoch across estimators, our modular
   engine vs the monolithic baseline engine. *)

let baseline_air_epoch ~estimator ~images ~batch ~store ~optim key =
  let n = (Tensor.shape images).(0) in
  let nbatches = n / batch in
  let t0 = Unix.gettimeofday () in
  let (_ : Train.report list) =
    Train.fit_surrogate ~store ~optim ~steps:nbatches
      ~surrogate:(fun frame step key_step ->
        let surrogates =
          List.init batch (fun i ->
              let image = Tensor.slice0 images ((step * batch) + i) in
              let baselines = Air.make_baselines () in
              let model = Air.model frame image in
              let guide = Air.guide ~baselines frame image in
              Svi.elbo_surrogate ~model ~guide estimator
                (Prng.fold_in key_step i))
        in
        Ad.scale (1. /. float_of_int batch) (Ad.add_list surrogates))
      key
  in
  Unix.gettimeofday () -. t0

let baseline_air_iwelbo_epoch ~particles ~images ~batch ~store ~optim key =
  let n = (Tensor.shape images).(0) in
  let nbatches = n / batch in
  let t0 = Unix.gettimeofday () in
  let (_ : Train.report list) =
    Train.fit_surrogate ~store ~optim ~steps:nbatches
      ~surrogate:(fun frame step key_step ->
        let surrogates =
          List.init batch (fun i ->
              let image = Tensor.slice0 images ((step * batch) + i) in
              let baselines = Air.make_baselines () in
              let model = Air.model frame image in
              let guide = Air.guide ~baselines frame image in
              Svi.iwelbo_surrogate ~particles ~model ~guide Svi.Reinforce
                (Prng.fold_in key_step i))
        in
        Ad.scale (1. /. float_of_int batch) (Ad.add_list surrogates))
      key
  in
  Unix.gettimeofday () -. t0

let t2 ~quick () =
  hr "Table 2: AIR seconds/epoch per estimator (ours vs monolithic baseline)";
  let n_images = if quick then 64 else 256 in
  let batch = 16 in
  let images, _ = Data.air_batch (Prng.key 10) n_images in
  Printf.printf "(%d images, batch %d, IWELBO n=2)\n" n_images batch;
  let run_ours label strategy objective =
    let store = Store.create () in
    Air.register store (Prng.key 11);
    let optim = Optim.adam ~lr:1e-3 () in
    let baselines = Air.make_baselines () in
    let _, dt =
      Air.train_epoch ~pres:strategy ~pos:strategy ~store ~optim ~baselines
        ~objective ~images ~batch (Prng.key 12)
    in
    Printf.printf "%-22s ours: %7.3f s\n%!" label dt
  in
  let run_baseline label maker =
    let store = Store.create () in
    Air.register store (Prng.key 11);
    let optim = Optim.adam ~lr:1e-3 () in
    try
      let dt = maker ~images ~batch ~store ~optim (Prng.key 12) in
      Printf.printf "%-22s baseline: %7.3f s\n%!" label dt
    with Svi.Unsupported msg ->
      Printf.printf "%-22s baseline: X (%s)\n%!" label msg
  in
  run_ours "REINFORCE" Air.RE Air.Elbo;
  run_ours "REINFORCE+BL" Air.RE_BL Air.Elbo;
  run_ours "ENUM" Air.EN Air.Elbo;
  run_ours "MVD" Air.MV Air.Elbo;
  run_ours "IWELBO+REINFORCE" Air.RE (Air.Iwelbo 2);
  run_ours "IWELBO+MVD" Air.MV (Air.Iwelbo 2);
  run_baseline "REINFORCE" (baseline_air_epoch ~estimator:Svi.Reinforce);
  run_baseline "REINFORCE+BL"
    (baseline_air_epoch ~estimator:Svi.Reinforce_baselines);
  run_baseline "ENUM" (baseline_air_epoch ~estimator:Svi.Enum_discrete);
  Printf.printf "%-22s baseline: X (no measure-valued estimator in the menu)\n"
    "MVD";
  run_baseline "IWELBO+REINFORCE" (baseline_air_iwelbo_epoch ~particles:2);
  Printf.printf "%-22s baseline: X (no measure-valued estimator in the menu)\n"
    "IWELBO+MVD"

(* ------------------------------------------------------------------ *)
(* T3 (Table 3): the expressivity grid. *)

let baseline_probe ~model ~guide ~objective ~pres ~pos key =
  let estimator =
    match (pres, pos) with
    | Air.RE, Air.RE -> Svi.Reinforce
    | Air.RE_BL, Air.RE_BL -> Svi.Reinforce_baselines
    | Air.EN, Air.EN -> Svi.Enum_discrete
    | Air.MV, _ | _, Air.MV ->
      raise (Svi.Unsupported "no measure-valued estimator in the menu")
    | _ -> raise (Svi.Unsupported "per-site strategy mixing")
  in
  let s =
    match objective with
    | Grid.Elbo -> Svi.elbo_surrogate ~model ~guide estimator key
    | Grid.Iwae -> Svi.iwelbo_surrogate ~particles:2 ~model ~guide estimator key
    | Grid.Rws -> raise (Svi.Unsupported "reweighted wake-sleep")
  in
  Ad.backward s

let t3 ~quick () =
  hr "Table 3: estimator-combination x objective expressivity grid";
  Printf.printf "%-28s %-8s %-10s %s\n" "Strategies (pres+pos)" "Obj."
    "Baseline" "Ours";
  let key = Prng.key 20 in
  List.iter
    (fun (combo, obj) ->
      let heavy =
        obj = Grid.Iwae
        && (combo.Grid.pres = Air.EN || combo.Grid.pos = Air.EN)
      in
      let ours =
        if quick && heavy then "OK*"
        else
          match Grid.try_ours combo obj key with
          | Grid.Supported -> "OK"
          | Grid.Failed msg -> "X (" ^ msg ^ ")"
      in
      let baseline =
        match Grid.try_probe ~probe:baseline_probe combo obj key with
        | Grid.Supported -> "OK"
        | Grid.Failed _ -> "X"
      in
      Printf.printf "%-28s %-8s %-10s %s\n%!" (Grid.combo_name combo)
        (Grid.objective_name obj) baseline ours)
    Grid.rows;
  if quick then
    Printf.printf
      "(* = IWAE with full enumeration verified in the non-quick run)\n"

(* ------------------------------------------------------------------ *)
(* T4 (Table 4): final mean objective values on the cone problem. *)

let t4 ~quick () =
  hr "Table 4: final mean objective value (nats) on the cone problem";
  let steps = if quick then 800 else 2000 in
  let kinds =
    [ Cone.Elbo; Cone.Iwelbo 5; Cone.Hvi; Cone.Iwhvi 5;
      Cone.Iwhvi_learned 5; Cone.Diwhvi (5, 5) ]
  in
  Printf.printf "%-18s %-10s %s\n" "Objective" "Value" "(higher = tighter)";
  List.iter
    (fun kind ->
      let store, _ = Cone.train ~steps kind (Prng.key 30) in
      let v = Cone.final_value ~samples:3000 store kind (Prng.key 31) in
      Printf.printf "%-18s %8.2f\n%!" (Cone.objective_name kind) v)
    kinds

(* ------------------------------------------------------------------ *)
(* F2 (Fig 2): ELBO training of the mean-field guide. *)

let scatter_stats pts =
  let r2s = List.map (fun (x, y) -> (x *. x) +. (y *. y)) pts in
  (mean r2s, std r2s)

let f2 ~quick () =
  hr "Fig 2: mean-field guide trained with the ELBO on the cone posterior";
  let steps = if quick then 800 else 2000 in
  let store, reports = Cone.train ~steps Cone.Elbo (Prng.key 40) in
  List.iter
    (fun s ->
      if s < steps then
        Printf.printf "step %5d  elbo %8.3f\n" s
          (List.nth reports s).Train.objective)
    [ 0; 10; 50; 100; 200; 400; steps - 1 ];
  let pts = Cone.guide_samples store Cone.Elbo 400 (Prng.key 41) in
  let m, s = scatter_stats pts in
  Printf.printf
    "guide samples: mean(x^2+y^2) = %.2f +- %.2f (posterior circle: 5.0)\n" m s;
  Printf.printf
    "mode-seeking: the mean-field guide hugs one arc of the circle\n"

(* F3 (Fig 3): programmable improvements — IWELBO + SIR, marginal. *)

let f3 ~quick () =
  hr "Fig 3: importance-weighted VI and hierarchical guides on the cone";
  let steps = if quick then 800 else 2000 in
  (* Left panel: train with IWELBO, then sample the SIR guide. *)
  let store, _ = Cone.train ~steps (Cone.Iwelbo 5) (Prng.key 50) in
  let frame = Store.Frame.make store in
  let sir = Cone.guide_sir ~particles:30 frame in
  let pts =
    List.init 400 (fun i ->
        let _, trace, _ = Gen.sample_prior sir (Prng.fold_in (Prng.key 51) i) in
        (Trace.get_float "x" trace, Trace.get_float "y" trace))
  in
  let m, s = scatter_stats pts in
  Printf.printf "q_SIR (N=30) samples: mean r^2 = %.2f +- %.2f (target 5.0)\n" m s;
  (* Right panel: hierarchical guide via marginal. *)
  let store_h, _ = Cone.train ~steps (Cone.Iwhvi 5) (Prng.key 52) in
  let pts_h = Cone.guide_samples store_h (Cone.Iwhvi 5) 400 (Prng.key 53) in
  let mh, sh = scatter_stats pts_h in
  Printf.printf "q_MARG samples:       mean r^2 = %.2f +- %.2f (target 5.0)\n" mh
    sh;
  (* Angular coverage: the hierarchical guide should cover more of the
     circle than the mode-seeking mean-field guide. *)
  let store_e, _ = Cone.train ~steps Cone.Elbo (Prng.key 54) in
  let pts_e = Cone.guide_samples store_e Cone.Elbo 400 (Prng.key 55) in
  let angular_spread pts =
    let angles = List.map (fun (x, y) -> Float.atan2 y x) pts in
    std angles
  in
  Printf.printf "angular spread: mean-field %.2f, hierarchical %.2f rad\n"
    (angular_spread pts_e) (angular_spread pts_h)

(* ------------------------------------------------------------------ *)
(* F8 (Fig 8): AIR training curves (objective + count accuracy). *)

let f8 ~quick () =
  hr "Fig 8: AIR objective and count accuracy per epoch, per estimator";
  let n_images = if quick then 96 else 256 in
  let epochs = if quick then 4 else 10 in
  let batch = 16 in
  let images, _ = Data.air_batch (Prng.key 60) n_images in
  let eval_images, eval_counts = Data.air_batch (Prng.key 61) 64 in
  let configs =
    [ ("ELBO+REINFORCE", Air.RE, Air.Elbo);
      ("ELBO+REINFORCE+BL", Air.RE_BL, Air.Elbo);
      ("ELBO+ENUM", Air.EN, Air.Elbo);
      ("ELBO+MVD", Air.MV, Air.Elbo);
      ("IWAE(2)+REINFORCE", Air.RE, Air.Iwelbo 2);
      ("IWAE(2)+MVD", Air.MV, Air.Iwelbo 2);
      ("RWS(2)", Air.RE, Air.Rws 2) ]
  in
  Printf.printf "series: config, epoch, mean objective, count accuracy\n";
  List.iter
    (fun (label, strategy, objective) ->
      let store = Store.create () in
      Air.register store (Prng.key 62);
      let optim = Optim.adam ~lr:1e-3 () in
      let baselines = Air.make_baselines () in
      for epoch = 1 to epochs do
        let obj, _ =
          Air.train_epoch ~pres:strategy ~pos:strategy ~store ~optim
            ~baselines ~objective ~images ~batch
            (Prng.fold_in (Prng.key 63) epoch)
        in
        let acc =
          Air.count_accuracy store eval_images eval_counts
            (Prng.fold_in (Prng.key 64) epoch)
        in
        Printf.printf "%s, %d, %.3f, %.3f\n%!" label epoch obj acc
      done)
    configs

(* ------------------------------------------------------------------ *)
(* D1: coin fairness. *)

let d1 ~quick () =
  hr "Appendix D.1: coin fairness (Beta-Bernoulli)";
  let steps = if quick then 600 else 1500 in
  let store, reports, dt = Coin.train ~steps (Prng.key 70) in
  let last100 =
    List.filteri (fun i _ -> i >= steps - 100) reports
    |> List.map (fun r -> r.Train.objective)
  in
  Printf.printf "wall time / step: %.3f ms\n" (1000. *. dt /. float_of_int steps);
  Printf.printf "avg ELBO (last 100 steps): %.2f\n" (mean last100);
  Printf.printf "inferred posterior mean: %.3f (exact conjugate: %.3f)\n"
    (Coin.posterior_mean store) Coin.exact_posterior_mean

(* D2: Bayesian linear regression. *)

let d2 ~quick () =
  hr "Appendix D.2: Bayesian linear regression (terrain ruggedness)";
  let steps = if quick then 600 else 1500 in
  let store, reports, dt = Regression.train ~steps (Prng.key 71) in
  let n_data = float_of_int (Array.length Regression.data) in
  let last100 =
    List.filteri (fun i _ -> i >= steps - 100) reports
    |> List.map (fun r -> r.Train.objective /. n_data)
  in
  Printf.printf "wall time / step: %.3f ms\n" (1000. *. dt /. float_of_int steps);
  Printf.printf "avg ELBO per datum (last 100 steps): %.3f\n" (mean last100);
  let a, ba, br, bar = Regression.coefficient_means store in
  let ta, tba, tbr, tbar = Data.regression_truth in
  Printf.printf "coefficients (learned vs true):\n";
  Printf.printf "  a   = %6.2f vs %6.2f\n  bA  = %6.2f vs %6.2f\n" a ta ba tba;
  Printf.printf "  bR  = %6.2f vs %6.2f\n  bAR = %6.2f vs %6.2f\n" br tbr bar
    tbar;
  Printf.printf "posterior predictive (mean [90%% CI]):\n";
  List.iter
    (fun r ->
      let m1, lo1, hi1 =
        Regression.predict store ~ruggedness:r ~in_africa:true (Prng.key 72)
      in
      let m0, lo0, hi0 =
        Regression.predict store ~ruggedness:r ~in_africa:false (Prng.key 73)
      in
      Printf.printf
        "  ruggedness %4.1f: africa %5.2f [%5.2f, %5.2f]   other %5.2f [%5.2f, \
         %5.2f]\n"
        r m1 lo1 hi1 m0 lo0 hi0)
    [ 0.; 2.; 4.; 6. ]

(* D3: semi-supervised VAE. *)

let d3 ~quick () =
  hr "Appendix D.3: semi-supervised VAE";
  let n = if quick then 64 else 256 in
  let epochs = if quick then 3 else 8 in
  let images, labels = Data.digit_batch (Prng.key 80) n in
  let store = Store.create () in
  Ssvae.register store (Prng.key 81);
  let optim = Optim.adam ~lr:2e-3 () in
  Printf.printf "epoch, unsup ELBO/datum, seconds, classifier accuracy\n";
  for epoch = 1 to epochs do
    let elbo, dt =
      Ssvae.train_epoch ~store ~optim ~images ~labels ~batch:8
        ~supervised_every:4
        (Prng.fold_in (Prng.key 82) epoch)
    in
    let acc = Ssvae.classifier_accuracy store images labels in
    Printf.printf "%d, %.2f, %.3f, %.3f\n%!" epoch elbo dt acc
  done;
  Printf.printf "conditional generation (label 3):\n%s"
    (Data.ascii (Ssvae.generate store ~label:3 (Prng.key 83)))

(* D4: conditional VAE. *)

let d4 ~quick () =
  hr "Appendix D.4: conditional VAE (quadrant completion)";
  let n = if quick then 64 else 256 in
  let epochs = if quick then 3 else 8 in
  let images, _ = Data.digit_batch (Prng.key 90) n in
  let store = Store.create () in
  Cvae.register store (Prng.key 91);
  let optim = Optim.adam ~lr:2e-3 () in
  Printf.printf "epoch, ELBO/datum, seconds\n";
  for epoch = 1 to epochs do
    let elbo, dt =
      Cvae.train_epoch ~store ~optim ~images ~batch:8
        (Prng.fold_in (Prng.key 92) epoch)
    in
    Printf.printf "%d, %.2f, %.3f\n%!" epoch elbo dt
  done;
  let img = Tensor.slice0 images 0 in
  Printf.printf "input digit:\n%s" (Data.ascii img);
  Printf.printf "fill-in from bottom-left quadrant:\n%s"
    (Data.ascii (Cvae.fill_in store img (Prng.key 93)))

(* ------------------------------------------------------------------ *)
(* Ablations. *)

let grad_variance ~n build =
  let samples =
    List.init n (fun i ->
        let theta, obj = build () in
        let _, grads =
          Adev.grad
            ~params:[ ("theta", theta) ]
            obj
            (Prng.fold_in (Prng.key 99) i)
        in
        Tensor.to_scalar (List.assoc "theta" grads))
  in
  (mean samples, std samples ** 2.)

let ablations ~quick () =
  hr "Ablation: gradient variance of REINFORCE vs MVD vs REPARAM (normal scale)";
  let n = if quick then 2000 else 10000 in
  Printf.printf
    "objective: d/dsigma E_{x~N(0,sigma)}[x^2] at sigma = 0.9 (true 1.8)\n";
  let make dist =
    let open Adev.Syntax in
    let theta = Ad.scalar 0.9 in
    ( theta,
      let* x = Adev.sample (dist (Ad.scalar 0.) theta) in
      Adev.return (Ad.mul x x) )
  in
  List.iter
    (fun (label, dist) ->
      let m, v = grad_variance ~n (fun () -> make dist) in
      Printf.printf "%-10s mean %6.3f  variance %8.3f\n%!" label m v)
    [ ("REINFORCE", Dist.normal_reinforce); ("MVD", Dist.normal_mvd);
      ("REPARAM", Dist.normal_reparam) ];
  hr "Ablation: per-site DiCE (ours) vs single-coefficient monolithic surrogate";
  let toy_model =
    let open Gen.Syntax in
    let* b = Gen.sample (Dist.flip_reinforce (Ad.scalar 0.5)) "b" in
    Gen.observe (Dist.flip_reinforce (Ad.scalar (if b then 0.9 else 0.2))) true
  in
  let modular =
    List.init n (fun i ->
        let theta = Ad.scalar 0.4 in
        let guide = Gen.sample (Dist.flip_reinforce theta) "b" in
        let _, grads =
          Adev.grad
            ~params:[ ("theta", theta) ]
            (Objectives.elbo ~model:toy_model ~guide)
            (Prng.fold_in (Prng.key 98) i)
        in
        Tensor.to_scalar (List.assoc "theta" grads))
  in
  let monolithic =
    List.init n (fun i ->
        let theta = Ad.scalar 0.4 in
        let guide = Gen.sample (Dist.flip_reinforce theta) "b" in
        let s =
          Svi.elbo_surrogate ~model:toy_model ~guide Svi.Reinforce
            (Prng.fold_in (Prng.key 98) i)
        in
        Ad.backward s;
        Tensor.to_scalar (Ad.grad theta))
  in
  Printf.printf "modular DiCE:        mean %.3f variance %.3f\n" (mean modular)
    (std modular ** 2.);
  Printf.printf "monolithic:          mean %.3f variance %.3f\n"
    (mean monolithic)
    (std monolithic ** 2.);
  Printf.printf "(same estimator, two constructions: means agree)\n";
  hr "Ablation: estimator cost and variance vs categorical support size";
  Printf.printf
    "objective: E_{i ~ softmax(logits)}[f i], one gradient sample per run\n";
  let scaling_n = if quick then 500 else 2000 in
  List.iter
    (fun support ->
      let table = Array.init support (fun i -> Float.sin (float_of_int i)) in
      let make dist_of =
        let logits =
          Ad.const
            (Tensor.init [| support |] (fun ix -> 0.01 *. float_of_int ix.(0)))
        in
        let open Adev.Syntax in
        ( logits,
          let* i = Adev.sample (dist_of logits) in
          Adev.return (Ad.scalar table.(i)) )
      in
      List.iter
        (fun (label, dist_of) ->
          let t0 = Unix.gettimeofday () in
          let grads =
            List.init scaling_n (fun i ->
                let logits, obj = make dist_of in
                let _, gs =
                  Adev.grad
                    ~params:[ ("l", logits) ]
                    obj
                    (Prng.fold_in (Prng.key 93) i)
                in
                Tensor.get_flat (List.assoc "l" gs) 0)
          in
          let dt = (Unix.gettimeofday () -. t0) /. float_of_int scaling_n in
          Printf.printf
            "support %4d  %-10s %8.1f us/grad   grad[0] var %10.6f\n%!"
            support label (dt *. 1e6) (std grads ** 2.))
        [ ("REINFORCE", Dist.categorical_logits_reinforce);
          ("ENUM", Dist.categorical_logits_enum);
          ("MVD", Dist.categorical_logits_mvd) ])
    [ 2; 8; 32; 128 ];
  hr "Extension: Markov chain VI (MH chain marginalized with `marginal`)";
  let mcvi_steps = if quick then 400 else 1000 in
  let store_mcvi, _ = Mcvi.train ~train_steps:mcvi_steps ~aux_particles:3 (Prng.key 95) in
  let pts = Mcvi.guide_samples store_mcvi 300 (Prng.key 94) in
  let r2 = mean (List.map (fun (x, y) -> (x *. x) +. (y *. y)) pts) in
  let angles = List.map (fun (x, y) -> Float.atan2 y x) pts in
  Printf.printf
    "MCVI (3-step MH chain, m=3): mean r^2 = %.2f (target 5), angular spread %.2f rad\n"
    r2 (std angles);
  hr "Ablation: marginal particle count vs bound tightness (IWHVI on the cone)";
  let steps = if quick then 600 else 1500 in
  List.iter
    (fun m ->
      let store, _ = Cone.train ~steps (Cone.Iwhvi m) (Prng.key 97) in
      let v =
        Cone.final_value ~samples:2000 store (Cone.Iwhvi m) (Prng.key 96)
      in
      Printf.printf "IWHVI m=%-3d final objective %8.3f\n%!" m v)
    [ 1; 5; 25 ]

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: one Test.make per table. *)

let bechamel () =
  hr "Bechamel microbenchmarks (monotonic clock, one test per table)";
  let open Bechamel in
  let vae_store = Store.create () in
  Vae.register vae_store (Prng.key 1);
  let vae_images, _ = Data.digit_batch (Prng.key 2) 64 in
  let t1_ours =
    Test.make ~name:"t1: VAE grad (ours, batch 64)"
      (Staged.stage (fun () ->
           let frame = Store.Frame.make vae_store in
           let s =
             Adev.expectation (Vae.elbo_per_datum frame vae_images) (Prng.key 3)
           in
           Ad.backward s))
  in
  let t1_hand =
    Test.make ~name:"t1: VAE grad (hand-coded, batch 64)"
      (Staged.stage (fun () ->
           let frame = Store.Frame.make vae_store in
           let s = Vae_hand.elbo_surrogate frame vae_images (Prng.key 3) in
           Ad.backward s))
  in
  let air_store = Store.create () in
  Air.register air_store (Prng.key 4);
  let air_images, _ = Data.air_batch (Prng.key 5) 4 in
  let air_test name strategy =
    Test.make ~name
      (Staged.stage (fun () ->
           let frame = Store.Frame.make air_store in
           let baselines = Air.make_baselines () in
           let objs =
             Air.batch_objectives ~pres:strategy ~pos:strategy ~baselines
               Air.Elbo frame air_images
           in
           let s =
             Ad.add_list
               (List.mapi
                  (fun i o -> Adev.expectation o (Prng.fold_in (Prng.key 6) i))
                  objs)
           in
           Ad.backward s))
  in
  let t3_grid =
    Test.make ~name:"t3: one mixed-strategy grid cell (MVD+ENUM)"
      (Staged.stage (fun () ->
           ignore
             (Grid.try_ours
                { Grid.pres = Air.MV; pos = Air.EN }
                Grid.Elbo (Prng.key 9))))
  in
  let t4_cone =
    Test.make ~name:"t4: cone DIWHVI(5,5) objective estimate"
      (Staged.stage (fun () ->
           let store = Store.create () in
           Cone.register store (Prng.key 7);
           let frame = Store.Frame.make store in
           let s =
             Adev.expectation
               (Cone.objective (Cone.Diwhvi (5, 5)) frame)
               (Prng.key 8)
           in
           Ad.backward s))
  in
  let tests =
    [ t1_ours; t1_hand;
      air_test "t2: AIR ELBO step (REINFORCE, 4 imgs)" Air.RE;
      air_test "t2: AIR ELBO step (ENUM, 4 imgs)" Air.EN;
      air_test "t2: AIR ELBO step (MVD, 4 imgs)" Air.MV; t3_grid; t4_cone ]
  in
  let benchmark test =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.5) () in
    let raw = Benchmark.all cfg instances test in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  List.iter
    (fun test ->
      let results = benchmark (Test.make_grouped ~name:"ppvi" [ test ]) in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-50s %14.1f ns/run\n%!" name est
          | _ -> Printf.printf "%-50s (no estimate)\n%!" name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Machine-readable benchmark pipeline: `json` times the tensor kernels
   and the full VAE gradient step with bechamel's monotonic clock and
   writes BENCH_tensor.json / BENCH_vae.json (schema documented in
   EXPERIMENTS.md). *)

let bech_samples ~quota ~limit f =
  let open Bechamel in
  let test = Test.make ~name:"sample" (Staged.stage f) in
  let elt = List.hd (Test.elements test) in
  let cfg = Benchmark.cfg ~limit ~quota:(Time.second quota) () in
  let { Benchmark.lr; _ } =
    Benchmark.run cfg [ Toolkit.Instance.monotonic_clock ] elt
  in
  let label = Measure.label Toolkit.Instance.monotonic_clock in
  (* Per-sample wall time in milliseconds: total ns over the sample's
     runs, divided by the run count. *)
  Array.to_list lr
  |> List.map (fun r ->
         Measurement_raw.get ~label r /. Measurement_raw.run r /. 1e6)

type json_entry = {
  e_name : string;
  e_pkey : string;  (* "size" for tensor entries, "batch" for VAE *)
  e_pval : int;
  e_samples : float list;
}

let write_json path ~domains entries =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"schema_version\": 1,\n  \"domains\": %d,\n  \"entries\": [\n"
    domains;
  let n = List.length entries in
  List.iteri
    (fun i e ->
      Printf.fprintf oc
        "    { \"name\": %S, \"%s\": %d, \"mean_ms\": %.6f, \"stddev_ms\": \
         %.6f, \"median_ms\": %.6f, \"domains\": %d }%s\n"
        e.e_name e.e_pkey e.e_pval (mean e.e_samples) (std e.e_samples)
        (median e.e_samples) domains
        (if i = n - 1 then "" else ","))
    entries;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s (%d entries)\n%!" path n

let json ~quick () =
  hr
    "Machine-readable benchmarks -> BENCH_tensor.json, BENCH_vae.json, \
     BENCH_batched.json, BENCH_compiled.json";
  let domains = Parallel.domains () in
  let quota = if quick then 0.25 else 1.0 in
  let limit = if quick then 1 else 300 in
  let run f = bech_samples ~quota ~limit f in
  let mat n key = Tensor.map (fun u -> u -. 0.5) (Prng.uniform_tensor (Prng.key key) [| n; n |]) in
  let tensor_entries =
    let sizes = if quick then [ 64; 128; 256 ] else [ 64; 128; 256; 512 ] in
    let matmuls =
      List.map
        (fun n ->
          let a = mat n 100 and b = mat n 101 in
          { e_name = "matmul"; e_pkey = "size"; e_pval = n;
            e_samples = run (fun () -> ignore (Sys.opaque_identity (Tensor.matmul a b))) })
        sizes
    in
    let a256 = mat 256 102 and b256 = mat 256 103 in
    let transposed =
      [ { e_name = "matmul_t"; e_pkey = "size"; e_pval = 256;
          e_samples = run (fun () -> ignore (Sys.opaque_identity (Tensor.matmul_t a256 b256))) };
        { e_name = "t_matmul"; e_pkey = "size"; e_pval = 256;
          e_samples = run (fun () -> ignore (Sys.opaque_identity (Tensor.t_matmul a256 b256))) } ]
    in
    let rows =
      Tensor.map (fun u -> u -. 0.5) (Prng.uniform_tensor (Prng.key 104) [| 256; 144 |])
    and bias =
      Tensor.map (fun u -> u -. 0.5) (Prng.uniform_tensor (Prng.key 105) [| 144 |])
    in
    let big = Tensor.map (fun u -> u -. 0.5) (Prng.uniform_tensor (Prng.key 106) [| 512; 512 |]) in
    let elementwise =
      [ { e_name = "map2_row_broadcast"; e_pkey = "size"; e_pval = 256 * 144;
          e_samples = run (fun () -> ignore (Sys.opaque_identity (Tensor.add rows bias))) };
        { e_name = "map_softplus"; e_pkey = "size"; e_pval = 512 * 512;
          e_samples = run (fun () -> ignore (Sys.opaque_identity (Tensor.softplus big))) } ]
    in
    matmuls @ transposed @ elementwise
  in
  write_json "BENCH_tensor.json" ~domains tensor_entries;
  let store = Store.create () in
  Vae.register store (Prng.key 1);
  let batches = [ 64; 128; 256 ] in
  let vae_entries =
    List.concat_map
      (fun batch ->
        let images, _ = Data.digit_batch (Prng.key 2) batch in
        let ours =
          run (fun () ->
              let frame = Store.Frame.make store in
              let s =
                Adev.expectation (Vae.elbo_per_datum frame images) (Prng.key 3)
              in
              Ad.backward s;
              ignore (Sys.opaque_identity (Store.Frame.grads frame)))
        in
        let hand =
          run (fun () ->
              let frame = Store.Frame.make store in
              let s = Vae_hand.elbo_surrogate frame images (Prng.key 3) in
              Ad.backward s;
              ignore (Sys.opaque_identity (Store.Frame.grads frame)))
        in
        [ { e_name = "vae_grad_step"; e_pkey = "batch"; e_pval = batch;
            e_samples = ours };
          { e_name = "vae_grad_step_hand"; e_pkey = "batch"; e_pval = batch;
            e_samples = hand } ])
      batches
  in
  (* Observability overhead: the batch-256 "ours" grad step re-run with
     recording enabled (null sink). compare.exe --overhead gates the
     median of this entry against vae_grad_step from the same run. *)
  let obs_entry =
    let batch = 256 in
    let images, _ = Data.digit_batch (Prng.key 2) batch in
    Obs.configure ~enabled:true ~sink:`Null ();
    let samples =
      run (fun () ->
          let frame = Store.Frame.make store in
          let s =
            Adev.expectation (Vae.elbo_per_datum frame images) (Prng.key 3)
          in
          Ad.backward s;
          ignore (Sys.opaque_identity (Store.Frame.grads frame)))
    in
    Obs.configure ~enabled:false ~sink:`Console ();
    Obs.reset ();
    { e_name = "vae_grad_step_obs"; e_pkey = "batch"; e_pval = batch;
      e_samples = samples }
  in
  write_json "BENCH_vae.json" ~domains (vae_entries @ [ obs_entry ]);
  (* Batched-engine speedups: the plated VAE gradient step against the
     per-datum interpreter loop, and the 64-particle IWELBO drawn as one
     vectorized pass against the sequential particle loop. *)
  let batched_entries =
    let batch = 256 in
    let images, _ = Data.digit_batch (Prng.key 2) batch in
    let grad_step elbo =
      run (fun () ->
          let frame = Store.Frame.make store in
          let s = Adev.expectation (elbo frame images) (Prng.key 3) in
          Ad.backward s;
          ignore (Sys.opaque_identity (Store.Frame.grads frame)))
    in
    let one, _ = Data.digit_batch (Prng.key 4) 1 in
    let image = Tensor.slice0 one 0 in
    let particles = 64 in
    let iwelbo_step batched =
      run (fun () ->
          let frame = Store.Frame.make store in
          let s =
            Adev.expectation
              (Objectives.iwelbo ~batched ~particles
                 ~model:(Vae.model1 frame image)
                 ~guide:(Vae.guide1 frame image) ())
              (Prng.key 5)
          in
          Ad.backward s;
          ignore (Sys.opaque_identity (Store.Frame.grads frame)))
    in
    [ { e_name = "vae_grad_step_batched"; e_pkey = "batch"; e_pval = batch;
        e_samples = grad_step Vae.elbo_per_datum };
      { e_name = "vae_grad_step_looped"; e_pkey = "batch"; e_pval = batch;
        e_samples = grad_step Vae.elbo_per_datum_looped };
      { e_name = "iwelbo_batched"; e_pkey = "particles"; e_pval = particles;
        e_samples = iwelbo_step true };
      { e_name = "iwelbo_sequential"; e_pkey = "particles"; e_pval = particles;
        e_samples = iwelbo_step false } ]
  in
  write_json "BENCH_batched.json" ~domains batched_entries;
  (* Staged-compilation speedups: the VAE gradient step through its
     execution plans next to the interpreter reference (both benefit
     from the fused Bernoulli kernel; the committed BENCH_batched
     baseline preserves the pre-staging reference that the CI speedup
     gate compares against), plus the one-time staging cost itself. *)
  let compiled_entries =
    let batch = 256 in
    let images, _ = Data.digit_batch (Prng.key 2) batch in
    let grad_step compiled =
      run (fun () ->
          let frame = Store.Frame.make store in
          let s =
            Adev.expectation
              (Vae.elbo_per_datum ~compiled frame images)
              (Prng.key 3)
          in
          Ad.backward s;
          ignore (Sys.opaque_identity (Store.Frame.grads frame)))
    in
    (* Warm the plan cache before timing the compiled path, so the
       entry measures steady-state execution, not staging. *)
    let frame = Store.Frame.make store in
    ignore
      (Compile.plan_for ~id:"vae/model" (Gen.Packed (Vae.model frame images)));
    ignore
      (Compile.plan_for ~id:"vae/guide" (Gen.Packed (Vae.guide frame images)));
    (* One gradient step through the cached plans; used both for wall
       time (bechamel) and for minor-allocation accounting. *)
    let one_step () =
      let frame = Store.Frame.make store in
      let s =
        Adev.expectation (Vae.elbo_per_datum ~compiled:true frame images)
          (Prng.key 3)
      in
      Ad.backward s;
      ignore (Sys.opaque_identity (Store.Frame.grads frame))
    in
    (* Allocation per gradient step, in kwords (minor heap and major
       heap separately — OCaml places float arrays longer than 256
       words directly on the major heap, so the arena's big win shows
       up in major words while the pool's zero-bookkeeping hot path
       keeps minor words no worse). One warm-up step (the arena pool
       populates its dynamically-sized size classes on the first run),
       then the averaged Gc delta. Deterministic for a fixed batch, so
       the CI gate compares the arena entries against the plain
       compiled entries from the same run. *)
    let alloc_kwords () =
      one_step ();
      let reps = 5 in
      let s0 = Gc.quick_stat () in
      for _ = 1 to reps do one_step () done;
      let s1 = Gc.quick_stat () in
      let per f = (f s1 -. f s0) /. float_of_int reps /. 1e3 in
      ( per (fun (s : Gc.stat) -> s.Gc.minor_words),
        per (fun (s : Gc.stat) ->
            s.Gc.major_words -. s.Gc.promoted_words) )
    in
    (* A/B the same cached plans with and without their arena pools:
       arena execution is on by default, so detach first for the
       reference measurements, then re-attach. *)
    Compile.set_arena_execution false;
    let compiled = grad_step true in
    let compiled_minor_kw, compiled_major_kw = alloc_kwords () in
    Compile.set_arena_execution true;
    let arena = grad_step true in
    let arena_minor_kw, arena_major_kw = alloc_kwords () in
    let interp = grad_step false in
    let staging =
      run (fun () ->
          let frame = Store.Frame.make store in
          ignore
            (Sys.opaque_identity
               ( Compile.compile ~id:"bench/vae/model"
                   (Gen.Packed (Vae.model frame images)),
                 Compile.compile ~id:"bench/vae/guide"
                   (Gen.Packed (Vae.guide frame images)) )))
    in
    [ { e_name = "vae_grad_step_compiled"; e_pkey = "batch"; e_pval = batch;
        e_samples = compiled };
      { e_name = "vae_grad_step_arena"; e_pkey = "batch"; e_pval = batch;
        e_samples = arena };
      { e_name = "vae_grad_step_interp"; e_pkey = "batch"; e_pval = batch;
        e_samples = interp };
      (* Allocation pseudo-entries: the "ms" fields carry kwords per
         gradient step (single deterministic sample). The CI gate
         requires the arena entries to allocate measurably less than
         the plain compiled entries from the same run, which keeps the
         check machine-independent. *)
      { e_name = "vae_grad_step_compiled_minor_kw"; e_pkey = "batch";
        e_pval = batch; e_samples = [ compiled_minor_kw ] };
      { e_name = "vae_grad_step_arena_minor_kw"; e_pkey = "batch";
        e_pval = batch; e_samples = [ arena_minor_kw ] };
      { e_name = "vae_grad_step_compiled_major_kw"; e_pkey = "batch";
        e_pval = batch; e_samples = [ compiled_major_kw ] };
      { e_name = "vae_grad_step_arena_major_kw"; e_pkey = "batch";
        e_pval = batch; e_samples = [ arena_major_kw ] };
      { e_name = "compile_once"; e_pkey = "programs"; e_pval = 2;
        e_samples = staging } ]
  in
  write_json "BENCH_compiled.json" ~domains compiled_entries

(* Memory-scaled training suite -> BENCH_memory.json: rematerialization
   (latency, GC pressure, peak live tape) and sharded-step determinism.
   The _kw, peak-live, and mismatch pseudo-entries are deterministic
   for a fixed batch, so the CI gates on them are machine-independent;
   only the vae_grad_step_remat latency entry is wall-clock. *)
let memory ~quick () =
  hr "Memory-scaled training -> BENCH_memory.json";
  let domains = Parallel.domains () in
  let quota = if quick then 0.25 else 1.0 in
  let limit = if quick then 1 else 300 in
  let run f = bech_samples ~quota ~limit f in
  let batch = 256 in
  let segments = 4 in
  let store = Store.create () in
  Vae.register store (Prng.key 1);
  let key = Prng.key 2 in
  (* The batch is drawn once: data synthesis is identical on both
     sides, so excluding it keeps the remat-vs-plain comparison about
     the tape. *)
  let images, _ = Data.digit_batch key batch in
  let step remat () = Vae.grad_step_on store ~images ~segments ~remat key in
  let plain = run (step false) in
  let remat = run (step true) in
  (* GC pressure per gradient step, in kwords, as in the compiled
     suite: one warm-up step (the segment pool populates its size
     classes on the first checkpointed run), then the averaged Gc
     delta over a fixed rep count. *)
  let alloc_kwords remat =
    step remat ();
    let reps = 5 in
    let s0 = Gc.quick_stat () in
    for _ = 1 to reps do
      step remat ()
    done;
    let s1 = Gc.quick_stat () in
    let per f = (f s1 -. f s0) /. float_of_int reps /. 1e3 in
    ( per (fun (s : Gc.stat) -> s.Gc.minor_words),
      per (fun (s : Gc.stat) -> s.Gc.major_words -. s.Gc.promoted_words) )
  in
  let plain_minor_kw, plain_major_kw = alloc_kwords false in
  let remat_minor_kw, remat_major_kw = alloc_kwords true in
  (* Peak live tape nodes, A/B on the SAME sliced step with checkpoint
     barriers off/on (counts, not times): the vectorized tape's node
     count is batch-independent, so the honest measure of what
     checkpointing buys is barrier-vs-no-barrier on one graph. *)
  let peak_full =
    Vae.grad_step_peak_live store ~batch ~segments ~remat:false key
  in
  let peak_remat =
    Vae.grad_step_peak_live store ~batch ~segments ~remat:true key
  in
  (* Determinism drill: the same 4-shard gradient step on 1, 2, and 4
     domains, and the remat A/B under fixed keys, must agree
     bit-for-bit. Mismatch counts become pseudo-entries gated against
     the constant reference entry (medians can't express "must be
     zero" directly, so both sides are offset by 1). *)
  let grads_bits ndomains remat =
    Parallel.set_domains ndomains;
    let spec = Vae.step_spec ~shards:4 ~remat ~batch:64 (Prng.key 5) in
    let _, gs = Train.shard_step ~store ~spec ~step:0 (Prng.key 5) in
    List.map
      (fun (n, t) -> (n, Array.map Int64.bits_of_float (Tensor.to_array t)))
      gs
  in
  let reference = grads_bits 1 false in
  let count_mismatch other =
    try
      List.fold_left2
        (fun acc (n1, b1) (n2, b2) ->
          if n1 = n2 && b1 = b2 then acc else acc + 1)
        0 reference other
    with Invalid_argument _ -> List.length reference
  in
  let shard_mismatches =
    count_mismatch (grads_bits 2 false) + count_mismatch (grads_bits 4 false)
  in
  let remat_mismatches =
    count_mismatch (grads_bits 1 true) + count_mismatch (grads_bits 4 true)
  in
  Parallel.set_domains domains;
  write_json "BENCH_memory.json" ~domains
    [ { e_name = "vae_grad_step_plain"; e_pkey = "batch"; e_pval = batch;
        e_samples = plain };
      { e_name = "vae_grad_step_remat"; e_pkey = "batch"; e_pval = batch;
        e_samples = remat };
      { e_name = "vae_grad_step_plain_minor_kw"; e_pkey = "batch";
        e_pval = batch; e_samples = [ plain_minor_kw ] };
      { e_name = "vae_grad_step_remat_minor_kw"; e_pkey = "batch";
        e_pval = batch; e_samples = [ remat_minor_kw ] };
      { e_name = "vae_grad_step_plain_major_kw"; e_pkey = "batch";
        e_pval = batch; e_samples = [ plain_major_kw ] };
      { e_name = "vae_grad_step_remat_major_kw"; e_pkey = "batch";
        e_pval = batch; e_samples = [ remat_major_kw ] };
      { e_name = "vae_peak_live_full"; e_pkey = "batch"; e_pval = batch;
        e_samples = [ float_of_int peak_full ] };
      { e_name = "vae_peak_live_remat"; e_pkey = "batch"; e_pval = batch;
        e_samples = [ float_of_int peak_remat ] };
      { e_name = "vae_shard_mismatches"; e_pkey = "batch"; e_pval = 64;
        e_samples = [ float_of_int (1 + shard_mismatches) ] };
      { e_name = "vae_remat_mismatches"; e_pkey = "batch"; e_pval = 64;
        e_samples = [ float_of_int (1 + remat_mismatches) ] };
      { e_name = "vae_shard_reference"; e_pkey = "batch"; e_pval = 64;
        e_samples = [ 1.0 ] } ]

(* ------------------------------------------------------------------ *)
(* Inference-as-a-service suite -> BENCH_serve.json: 64 concurrent
   clients against the coalescing daemon vs the same 64-request index
   range pushed by one sequential client, plus the observed coalesce
   ratio, per-request bit-identity across the two passes, and a
   mid-load drain drill. Mismatch/lost counts become pseudo-entries
   offset by 1 and gated against the constant serve_reference entry,
   like the memory suite's determinism gates; the coalesce floor is a
   constant 2.0 entry gated to stay at or below the observed ratio. *)
let serve_bench ~quick () =
  hr "Inference-as-a-service -> BENCH_serve.json";
  let domains = Parallel.domains () in
  let reps = if quick then 1 else 3 in
  let clients = 64 in
  let per = if quick then 2 else 8 in
  let total = clients * per in
  let model = "chain" in
  let seed = 42 in
  let sock_counter = ref 0 in
  let with_server ~max_wait_us f =
    incr sock_counter;
    let path =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "ppvi-bench-%d-%d.sock" (Unix.getpid ()) !sock_counter)
    in
    let cfg =
      { (Serve.default_cfg (`Unix path)) with
        Serve.max_wait_us;
        queue_bound = 4096
      }
    in
    let s = Serve.start cfg in
    Fun.protect
      ~finally:(fun () ->
        Serve.request_drain s;
        Serve.wait s)
      (fun () -> f path s)
  in
  (* The sequential reference drives the SAME global request indices
     (round-robin over one client = identity), one at a time, through a
     fresh daemon with no batching window: every request is its own
     batch, which is exactly the no-coalescing cost. *)
  let sequential_pass () =
    with_server ~max_wait_us:0. (fun path _ ->
        Serve.run_load (`Unix path) ~clients:1 ~requests:total ~model ~seed ())
  in
  let concurrent_pass () =
    with_server ~max_wait_us:200. (fun path s ->
        let r =
          Serve.run_load (`Unix path) ~clients ~requests:per ~model ~seed ()
        in
        (r, Batcher.stats (Serve.batcher s)))
  in
  (* One warm pass on each side (plan staging, allocator warm-up). *)
  ignore (sequential_pass ());
  ignore (concurrent_pass ());
  let seq_reports = List.init reps (fun _ -> sequential_pass ()) in
  let conc_runs = List.init reps (fun _ -> concurrent_pass ()) in
  List.iter
    (fun r ->
      if r.Serve.lr_ok <> total then
        failwith
          (Printf.sprintf "serve bench: sequential pass answered %d/%d"
             r.Serve.lr_ok total))
    seq_reports;
  List.iter
    (fun (r, _) ->
      if r.Serve.lr_ok <> total then
        failwith
          (Printf.sprintf "serve bench: concurrent pass answered %d/%d"
             r.Serve.lr_ok total))
    conc_runs;
  let seq_samples =
    List.map (fun r -> r.Serve.lr_wall_s *. 1000.) seq_reports
  in
  let conc_samples =
    List.map (fun (r, _) -> r.Serve.lr_wall_s *. 1000.) conc_runs
  in
  let ratios =
    List.map (fun (_, st) -> Batcher.coalesce_ratio st) conc_runs
  in
  (* Bit-identity: every concurrent report must match the sequential
     reference index-for-index at the Int64 level. *)
  let reference = List.hd seq_reports in
  let mismatches =
    List.fold_left
      (fun acc (r, _) -> acc + Serve.mismatches reference r)
      0 conc_runs
  in
  (* Drain drill: request a drain mid-load; every request a client
     managed to send must still get a reply (value or an explicit
     draining error) — lost must be 0. *)
  let drain_lost =
    with_server ~max_wait_us:200. (fun path s ->
        let drainer =
          Thread.create
            (fun () ->
              Thread.delay 0.01;
              Serve.request_drain s)
            ()
        in
        let r =
          Serve.run_load (`Unix path) ~clients:8 ~requests:50 ~model ~seed:7 ()
        in
        Thread.join drainer;
        r.Serve.lr_lost)
  in
  Printf.printf
    "serve: %d requests  sequential %.1f ms  concurrent(%d clients) %.1f ms  \
     coalesce ratio %.2f  mismatches %d  drain lost %d\n%!"
    total (mean seq_samples) clients (mean conc_samples) (mean ratios)
    mismatches drain_lost;
  write_json "BENCH_serve.json" ~domains
    [ { e_name = "serve_sequential_64"; e_pkey = "clients"; e_pval = clients;
        e_samples = seq_samples };
      { e_name = "serve_concurrent_64"; e_pkey = "clients"; e_pval = clients;
        e_samples = conc_samples };
      { e_name = "serve_coalesce_ratio"; e_pkey = "clients"; e_pval = clients;
        e_samples = ratios };
      { e_name = "serve_coalesce_floor"; e_pkey = "clients"; e_pval = clients;
        e_samples = [ 2.0 ] };
      { e_name = "serve_bit_mismatches"; e_pkey = "clients"; e_pval = clients;
        e_samples = [ float_of_int (1 + mismatches) ] };
      { e_name = "serve_drain_lost"; e_pkey = "clients"; e_pval = clients;
        e_samples = [ float_of_int (1 + drain_lost) ] };
      { e_name = "serve_reference"; e_pkey = "clients"; e_pval = clients;
        e_samples = [ 1.0 ] } ]

(* ------------------------------------------------------------------ *)

let all ~quick () =
  t1 ~quick ();
  t2 ~quick ();
  t3 ~quick ();
  t4 ~quick ();
  f2 ~quick ();
  f3 ~quick ();
  f8 ~quick ();
  d1 ~quick ();
  d2 ~quick ();
  d3 ~quick ();
  d4 ~quick ();
  ablations ~quick ()

open Cmdliner

let quick_flag =
  Arg.(value & flag & info [ "quick" ] ~doc:"Reduced sizes for smoke runs.")

let domains_flag =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ]
        ~env:(Cmd.Env.info "PPVI_DOMAINS")
        ~docv:"N"
        ~doc:
          "Number of OCaml domains for parallel tensor kernels (default \
           \\$(env) or 1). Results are bit-identical for every value.")

let apply_domains = function Some n -> Parallel.set_domains n | None -> ()

let subcommand name doc f =
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const (fun quick domains ->
          apply_domains domains;
          f ~quick ())
      $ quick_flag $ domains_flag)

let () =
  let cmds =
    [ subcommand "t1" "Table 1 / Fig 10: VAE overhead" t1;
      subcommand "t2" "Table 2: AIR epoch timing" t2;
      subcommand "t3" "Table 3: expressivity grid" t3;
      subcommand "t4" "Table 4: cone objective values" t4;
      subcommand "f2" "Fig 2: ELBO on the cone" f2;
      subcommand "f3" "Fig 3: programmable guides on the cone" f3;
      subcommand "f8" "Fig 8: AIR training curves" f8;
      subcommand "d1" "Appendix D.1: coin" d1;
      subcommand "d2" "Appendix D.2: regression" d2;
      subcommand "d3" "Appendix D.3: SSVAE" d3;
      subcommand "d4" "Appendix D.4: CVAE" d4;
      subcommand "ablations" "Design-choice ablations" ablations;
      Cmd.v
        (Cmd.info "bechamel" ~doc:"Bechamel microbenchmarks")
        Term.(
          const (fun domains ->
              apply_domains domains;
              bechamel ())
          $ domains_flag);
      subcommand "json" "Machine-readable kernel + VAE benchmarks" json;
      subcommand "memory"
        "Memory-scaled training: remat latency/GC/peak-live and sharded \
         determinism -> BENCH_memory.json"
        memory;
      subcommand "serve"
        "Inference daemon: coalesced 64-client throughput, coalesce ratio, \
         bit-identity, drain drill -> BENCH_serve.json"
        serve_bench;
      subcommand "all" "Everything" all ]
  in
  let default =
    Term.(
      const (fun quick domains ->
          apply_domains domains;
          all ~quick ())
      $ quick_flag $ domains_flag)
  in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "ppvi-bench"
             ~doc:
               "Regenerate every table and figure of 'Probabilistic \
                Programming with Programmable Variational Inference'.")
          cmds))
