type expr =
  | Var of string
  | Const of float
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Neg of expr
  | Sin of expr
  | Cos of expr
  | Exp of expr

type stmt =
  | Let of string * expr
  | Sample_normal of string * expr * expr

type program = { params : string list; body : stmt list; result : string }
type env = (string * float) list

let rec expr_vars = function
  | Var v -> [ v ]
  | Const _ -> []
  | Add (a, b) | Sub (a, b) | Mul (a, b) -> expr_vars a @ expr_vars b
  | Neg a | Sin a | Cos a | Exp a -> expr_vars a

let validate prog =
  let defined = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace defined p ()) prog.params;
  let check_expr e =
    List.find_opt (fun v -> not (Hashtbl.mem defined v)) (expr_vars e)
  in
  let rec go = function
    | [] ->
      if Hashtbl.mem defined prog.result then Ok ()
      else Error (Printf.sprintf "result %S is not defined" prog.result)
    | stmt :: rest ->
      let dst, bad =
        match stmt with
        | Let (d, e) -> (d, check_expr e)
        | Sample_normal (d, mu, sigma) ->
          (d, match check_expr mu with Some v -> Some v | None -> check_expr sigma)
      in
      if Hashtbl.mem defined dst then
        Error (Printf.sprintf "variable %S is defined twice" dst)
      else begin
        match bad with
        | Some v -> Error (Printf.sprintf "variable %S used before definition" v)
        | None ->
          Hashtbl.replace defined dst ();
          go rest
      end
  in
  go prog.body

(* Elementary (A-normal) form. *)

type prim =
  | Pconst of float
  | Padd of string * string
  | Psub of string * string
  | Pmul of string * string
  | Pneg of string
  | Psin of string
  | Pcos of string
  | Pexp of string
  | Pnormal of string * string

type elementary = { dst : string; prim : prim }

let anf prog =
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "%%t%d" !counter
  in
  let out = ref [] in
  let emit dst prim = out := { dst; prim } :: !out in
  (* Flatten an expression, returning the variable holding its value. *)
  let rec flat = function
    | Var v -> v
    | Const c ->
      let t = fresh () in
      emit t (Pconst c);
      t
    | Add (a, b) -> binop (fun x y -> Padd (x, y)) a b
    | Sub (a, b) -> binop (fun x y -> Psub (x, y)) a b
    | Mul (a, b) -> binop (fun x y -> Pmul (x, y)) a b
    | Neg a -> unop (fun x -> Pneg x) a
    | Sin a -> unop (fun x -> Psin x) a
    | Cos a -> unop (fun x -> Pcos x) a
    | Exp a -> unop (fun x -> Pexp x) a
  and binop mk a b =
    let va = flat a in
    let vb = flat b in
    let t = fresh () in
    emit t (mk va vb);
    t
  and unop mk a =
    let va = flat a in
    let t = fresh () in
    emit t (mk va);
    t
  in
  let assign dst src_expr =
    match src_expr with
    | Var v ->
      (* Aliases still get their own elementary copy: dst = v + 0. *)
      let z = fresh () in
      emit z (Pconst 0.);
      emit dst (Padd (v, z))
    | e -> begin
      (* Flatten subexpressions, then re-point the last temp at dst. *)
      match flat e with
      | t -> begin
        match !out with
        | { dst = t'; prim } :: rest when t' = t ->
          out := { dst; prim } :: rest
        | _ -> emit dst (Padd (t, t))
      end
    end
  in
  List.iter
    (fun stmt ->
      match stmt with
      | Let (d, e) -> assign d e
      | Sample_normal (d, mu, sigma) ->
        let vmu = flat mu in
        let vsigma = flat sigma in
        emit d (Pnormal (vmu, vsigma)))
    prog.body;
  (List.rev !out, prog.result)

(* Forward-mode (JVP) transformation. *)

type lin_term = { coeff : string option; scale : float; src : string }
type lin_stmt = { lhs : string; terms : lin_term list }

type dual_program = {
  nonlin : elementary list;
  lin : lin_stmt list;
  primal_result : string;
  tangent_result : string;
  tangent_params : (string * string) list;
}

let tangent v = "d/" ^ v
let cotangent v = "c/" ^ v

let forward prog =
  let body, result = anf prog in
  let nonlin = ref [] in
  let lin = ref [] in
  let counter = ref 0 in
  let fresh prefix =
    incr counter;
    Printf.sprintf "%%%s%d" prefix !counter
  in
  let emit_nl dst prim = nonlin := { dst; prim } :: !nonlin in
  let emit_lin lhs terms = lin := { lhs; terms } :: !lin in
  let t1 ?coeff ?(scale = 1.) src = { coeff; scale; src } in
  List.iter
    (fun { dst; prim } ->
      let d = tangent dst in
      match prim with
      | Pconst c ->
        emit_nl dst (Pconst c);
        emit_lin d []
      | Padd (a, b) ->
        emit_nl dst prim;
        emit_lin d [ t1 (tangent a); t1 (tangent b) ]
      | Psub (a, b) ->
        emit_nl dst prim;
        emit_lin d [ t1 (tangent a); t1 ~scale:(-1.) (tangent b) ]
      | Pmul (a, b) ->
        emit_nl dst prim;
        emit_lin d [ t1 ~coeff:b (tangent a); t1 ~coeff:a (tangent b) ]
      | Pneg a ->
        emit_nl dst prim;
        emit_lin d [ t1 ~scale:(-1.) (tangent a) ]
      | Psin a ->
        emit_nl dst prim;
        (* The derivative coefficient joins the nonlinear fragment —
           this is what lands in the Fig. 9 trace. *)
        let c = fresh "dcos" in
        emit_nl c (Pcos a);
        emit_lin d [ t1 ~coeff:c (tangent a) ]
      | Pcos a ->
        emit_nl dst prim;
        let c = fresh "dsin" in
        emit_nl c (Psin a);
        emit_lin d [ t1 ~coeff:c ~scale:(-1.) (tangent a) ]
      | Pexp a ->
        emit_nl dst prim;
        (* d exp = exp itself: reuse the primal output as coefficient. *)
        emit_lin d [ t1 ~coeff:dst (tangent a) ]
      | Pnormal (mu, sigma) ->
        (* eps ~ N(0,1); dst = sigma * eps + mu (all nonlinear);
           d dst = d mu + eps * d sigma. Sampling stays nonlinear: the
           tangent never feeds a sampler. *)
        let zero = fresh "zero" and one = fresh "one" in
        emit_nl zero (Pconst 0.);
        emit_nl one (Pconst 1.);
        let eps = fresh "eps" in
        emit_nl eps (Pnormal (zero, one));
        let se = fresh "se" in
        emit_nl se (Pmul (sigma, eps));
        emit_nl dst (Padd (se, mu));
        emit_lin d [ t1 (tangent mu); t1 ~coeff:eps (tangent sigma) ])
    body;
  { nonlin = List.rev !nonlin;
    lin = List.rev !lin;
    primal_result = result;
    tangent_result = tangent result;
    tangent_params = List.map (fun p -> (p, tangent p)) prog.params }

let unzip dual =
  let trace =
    List.sort_uniq compare
      (List.concat_map
         (fun s -> List.filter_map (fun t -> t.coeff) s.terms)
         dual.lin)
  in
  (dual.nonlin, trace, dual.lin)

(* Transposition: reverse the linear statements, scattering each
   statement's cotangent into its sources'. *)

type transposed = { seed : string; accums : lin_stmt list }

let transpose lin ~output =
  let accums =
    List.concat_map
      (fun { lhs; terms } ->
        List.map
          (fun { coeff; scale; src } ->
            { lhs = cotangent src;
              terms = [ { coeff; scale; src = cotangent lhs } ] })
          terms)
      (List.rev lin)
  in
  { seed = cotangent output; accums }

(* Execution. *)

let lookup env v =
  match List.assoc_opt v env with
  | Some x -> x
  | None -> failwith (Printf.sprintf "Yolo: unbound variable %S" v)

let rec eval_expr env = function
  | Var v -> lookup env v
  | Const c -> c
  | Add (a, b) -> eval_expr env a +. eval_expr env b
  | Sub (a, b) -> eval_expr env a -. eval_expr env b
  | Mul (a, b) -> eval_expr env a *. eval_expr env b
  | Neg a -> -.eval_expr env a
  | Sin a -> Float.sin (eval_expr env a)
  | Cos a -> Float.cos (eval_expr env a)
  | Exp a -> Float.exp (eval_expr env a)

let run_nonlin env key body =
  let i = ref 0 in
  List.fold_left
    (fun env { dst; prim } ->
      incr i;
      let v =
        match prim with
        | Pconst c -> c
        | Padd (a, b) -> lookup env a +. lookup env b
        | Psub (a, b) -> lookup env a -. lookup env b
        | Pmul (a, b) -> lookup env a *. lookup env b
        | Pneg a -> -.lookup env a
        | Psin a -> Float.sin (lookup env a)
        | Pcos a -> Float.cos (lookup env a)
        | Pexp a -> Float.exp (lookup env a)
        | Pnormal (mu, sigma) ->
          Prng.normal_mean_std (Prng.fold_in key !i) (lookup env mu)
            (lookup env sigma)
      in
      (dst, v) :: env)
    env body

let term_value env tangents { coeff; scale; src } =
  let c = match coeff with Some v -> lookup env v | None -> 1. in
  scale *. c *. lookup tangents src

let run_linear env ~tangents lin =
  List.fold_left
    (fun tangents { lhs; terms } ->
      let v = List.fold_left (fun acc t -> acc +. term_value env tangents t) 0. terms in
      (lhs, v) :: tangents)
    tangents lin

let run_transposed env { seed; accums } =
  let get cot cots = Option.value ~default:0. (List.assoc_opt cot cots) in
  List.fold_left
    (fun cots { lhs; terms } ->
      let v =
        List.fold_left
          (fun acc { coeff; scale; src } ->
            let c = match coeff with Some v -> lookup env v | None -> 1. in
            acc +. (scale *. c *. get src cots))
          (get lhs cots) terms
      in
      (lhs, v) :: List.remove_assoc lhs cots)
    [ (seed, 1.) ]
    accums

let jvp prog env ~direction key =
  let dual = forward prog in
  let nl_env = run_nonlin env key dual.nonlin in
  let tangents =
    List.map
      (fun (p, dp) ->
        (dp, Option.value ~default:0. (List.assoc_opt p direction)))
      dual.tangent_params
  in
  let tans = run_linear nl_env ~tangents dual.lin in
  (lookup nl_env dual.primal_result, lookup tans dual.tangent_result)

let reverse_grad prog env key =
  let dual = forward prog in
  let nonlin, _trace, lin = unzip dual in
  let nl_env = run_nonlin env key nonlin in
  let transposed = transpose lin ~output:dual.tangent_result in
  let cots = run_transposed nl_env transposed in
  let grad =
    List.map
      (fun (p, dp) ->
        (p, Option.value ~default:0. (List.assoc_opt (cotangent dp) cots)))
      dual.tangent_params
  in
  (lookup nl_env dual.primal_result, grad)

(* Printing. *)

let rec pp_expr ppf = function
  | Var v -> Format.pp_print_string ppf v
  | Const c -> Format.fprintf ppf "%g" c
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp_expr a pp_expr b
  | Sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp_expr a pp_expr b
  | Mul (a, b) -> Format.fprintf ppf "(%a * %a)" pp_expr a pp_expr b
  | Neg a -> Format.fprintf ppf "(- %a)" pp_expr a
  | Sin a -> Format.fprintf ppf "sin %a" pp_expr a
  | Cos a -> Format.fprintf ppf "cos %a" pp_expr a
  | Exp a -> Format.fprintf ppf "exp %a" pp_expr a

let pp_program ppf prog =
  Format.fprintf ppf "@[<v>params %s@,"
    (String.concat ", " prog.params);
  List.iter
    (fun stmt ->
      match stmt with
      | Let (d, e) -> Format.fprintf ppf "let %s = %a@," d pp_expr e
      | Sample_normal (d, mu, sigma) ->
        Format.fprintf ppf "let %s ~ normal(%a, %a)@," d pp_expr mu pp_expr
          sigma)
    prog.body;
  Format.fprintf ppf "return %s@]" prog.result

let pp_prim ppf = function
  | Pconst c -> Format.fprintf ppf "%g" c
  | Padd (a, b) -> Format.fprintf ppf "%s + %s" a b
  | Psub (a, b) -> Format.fprintf ppf "%s - %s" a b
  | Pmul (a, b) -> Format.fprintf ppf "%s * %s" a b
  | Pneg a -> Format.fprintf ppf "- %s" a
  | Psin a -> Format.fprintf ppf "sin %s" a
  | Pcos a -> Format.fprintf ppf "cos %s" a
  | Pexp a -> Format.fprintf ppf "exp %s" a
  | Pnormal (mu, sigma) -> Format.fprintf ppf "normal(%s, %s)" mu sigma

let pp_term ppf { coeff; scale; src } =
  match (coeff, scale) with
  | None, 1. -> Format.pp_print_string ppf src
  | None, s -> Format.fprintf ppf "%g %s" s src
  | Some c, 1. -> Format.fprintf ppf "%s %s" c src
  | Some c, s -> Format.fprintf ppf "%g %s %s" s c src

let pp_dual ppf dual =
  Format.fprintf ppf "@[<v>nonlinear:@,";
  List.iter
    (fun { dst; prim } -> Format.fprintf ppf "  %s = %a@," dst pp_prim prim)
    dual.nonlin;
  Format.fprintf ppf "linear:@,";
  List.iter
    (fun { lhs; terms } ->
      Format.fprintf ppf "  %s = %a@," lhs
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " + ")
           pp_term)
        terms)
    dual.lin;
  Format.fprintf ppf "return (%s, %s)@]" dual.primal_result
    dual.tangent_result
