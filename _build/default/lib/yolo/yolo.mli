(** "You Only Linearize Once": deriving a reverse-mode gradient
    estimator from forward-mode transformations, as in the paper's
    Fig. 9 (Appendix A.4) and Radul et al.

    The main system (lib/adev) implements reverse mode directly as a
    surrogate-loss construction. This module is the {e compiler-style}
    derivation the genjax.vi implementation rides on top of JAX: a tiny
    first-order straight-line language with REPARAM sampling, and four
    program transformations —

    + {!anf}: flatten expressions to elementary assignments;
    + {!forward}: the dual-number (JVP) transformation; sampling
      primitives stay in the nonlinear fragment, per the paper's
      observation that this is safe for strategies whose samples do not
      depend on tangents;
    + {!unzip}: split the dual program into a nonlinear program (primal
      values + a {e trace} of the intermediates the linear part needs)
      and a purely linear tangent program over that trace;
    + {!transpose}: run the linear program backwards, turning the JVP
      into a VJP — reverse mode, without ever writing a reverse-mode AD.

    {!reverse_grad} composes all four and estimates
    [d/dtheta_i E (program)] for every parameter in one pass.
    [test/test_yolo.ml] checks each pass and the composition against
    finite differences and against the main ADEV implementation. *)

(** {1 Source language} *)

type expr =
  | Var of string
  | Const of float
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Neg of expr
  | Sin of expr
  | Cos of expr
  | Exp of expr

type stmt =
  | Let of string * expr
  | Sample_normal of string * expr * expr
      (** [x ~ normal_REPARAM (mu, sigma)]. *)

type program = {
  params : string list;  (** differentiable inputs *)
  body : stmt list;
  result : string;  (** the scalar loss variable *)
}

type env = (string * float) list
(** Variable environments for evaluation. *)

val validate : program -> (unit, string) result
(** Scope-check: every variable is defined before use, exactly once, and
    the result is defined. *)

(** {1 Elementary form} *)

type prim =
  | Pconst of float
  | Padd of string * string
  | Psub of string * string
  | Pmul of string * string
  | Pneg of string
  | Psin of string
  | Pcos of string
  | Pexp of string
  | Pnormal of string * string  (** mu, sigma *)

type elementary = { dst : string; prim : prim }

val anf : program -> elementary list * string
(** Administrative-normal-form pass: each statement applies one
    primitive to variables. Returns the flattened body and the result
    variable. Generated temporaries are prefixed ["%"]. *)

(** {1 The dual (forward-mode) program} *)

type lin_term = {
  coeff : string option;  (** nonlinear variable scaling this term; [None] = 1 *)
  scale : float;  (** constant multiplier (e.g. -1 for subtraction) *)
  src : string;  (** a tangent variable *)
}

type lin_stmt = { lhs : string; terms : lin_term list }

type dual_program = {
  nonlin : elementary list;  (** primal + derivative-coefficient code *)
  lin : lin_stmt list;  (** straight-line linear code over tangents *)
  primal_result : string;
  tangent_result : string;
  tangent_params : (string * string) list;
      (** parameter -> its input tangent variable *)
}

val forward : program -> dual_program
(** The JVP transformation (Fig. 9 (b)/(c)): primal statements plus
    linear tangent statements whose coefficients are nonlinear
    variables. [Sample_normal] contributes [eps] to the nonlinear
    fragment and [x_dot = mu_dot + eps * sigma_dot] to the linear one. *)

val unzip : dual_program -> elementary list * string list * lin_stmt list
(** Fig. 9 (d): the nonlinear program, the {e trace} (the nonlinear
    variables the linear fragment reads), and the linear program. *)

type transposed = {
  seed : string;  (** the output cotangent variable, seeded to 1 *)
  accums : lin_stmt list;
      (** accumulation statements, [lhs += sum terms], in execution
          order *)
}

val transpose : lin_stmt list -> output:string -> transposed
(** Fig. 9 (e): reverse the linear program — each forward statement
    [t = sum_i scale_i c_i s_i] scatters [t]'s cotangent into the
    [s_i]'s cotangents. Cotangent variables are named ["c/" ^ tangent]. *)

val cotangent : string -> string
(** The cotangent variable of a tangent variable. *)

val tangent : string -> string
(** The tangent variable of a source variable (["d/" ^ name]). *)

val run_transposed : env -> transposed -> env
(** Execute the accumulation statements given the trace environment;
    returns the cotangent environment. *)

(** {1 Execution} *)

val eval_expr : env -> expr -> float
val run_nonlin : env -> Prng.key -> elementary list -> env
(** Execute the nonlinear fragment (sampling with the key). *)

val run_linear : env -> tangents:env -> lin_stmt list -> env
(** Execute the linear fragment given the trace environment and input
    tangents. *)

val jvp :
  program -> env -> direction:env -> Prng.key -> float * float
(** One stochastic (value, directional-derivative) sample via
    forward mode. *)

val reverse_grad :
  program -> env -> Prng.key -> float * (string * float) list
(** One stochastic (value, full-gradient) sample via
    forward -> unzip -> transpose: the YOLO reverse mode. *)

val pp_program : Format.formatter -> program -> unit
val pp_dual : Format.formatter -> dual_program -> unit
(** Printers used by the Fig. 9 walkthrough in the test suite and
    documentation. *)
