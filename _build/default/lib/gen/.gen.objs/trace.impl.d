lib/gen/trace.ml: Format List Map String Value
