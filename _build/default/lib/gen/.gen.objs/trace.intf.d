lib/gen/trace.mli: Ad Format Value
