lib/gen/gen.mli: Ad Adev Dist Prng Trace
