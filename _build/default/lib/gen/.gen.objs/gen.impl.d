lib/gen/gen.ml: Ad Adev Array Dist Float List Printf Prng Tensor Trace Value
