type dual = { v : float; dv : float }
type 'a p = Prng.key -> ('a -> dual) -> dual

let return x _key k = k x

let bind m f key k =
  let k1, k2 = Prng.split key in
  m k1 (fun a -> f a k2 k)

let ( let* ) = bind

let dual v dv = { v; dv }
let constant v = { v; dv = 0. }
let add a b = { v = a.v +. b.v; dv = a.dv +. b.dv }
let sub a b = { v = a.v -. b.v; dv = a.dv -. b.dv }
let mul a b = { v = a.v *. b.v; dv = (a.dv *. b.v) +. (a.v *. b.dv) }

let div a b =
  { v = a.v /. b.v; dv = ((a.dv *. b.v) -. (a.v *. b.dv)) /. (b.v *. b.v) }

let neg a = { v = -.a.v; dv = -.a.dv }
let exp a = { v = Float.exp a.v; dv = Float.exp a.v *. a.dv }
let log a = { v = Float.log a.v; dv = a.dv /. a.v }
let sin_d a = { v = Float.sin a.v; dv = Float.cos a.v *. a.dv }
let cos_d a = { v = Float.cos a.v; dv = -.Float.sin a.v *. a.dv }

(* Fig. 6: D{normal_REPARAM} — push the tangent through sigma*eps + mu. *)
let normal_reparam mu sigma key k =
  let eps = Prng.normal key in
  k { v = mu.v +. (sigma.v *. eps); dv = mu.dv +. (sigma.dv *. eps) }

(* Fig. 6: D{normal_REINFORCE} — sample detached, add y * dlog p. *)
let normal_reinforce mu sigma key k =
  let x = Prng.normal_mean_std key mu.v sigma.v in
  let y = k { v = x; dv = 0. } in
  let z = (x -. mu.v) /. sigma.v in
  let l' =
    (mu.dv *. z /. sigma.v)
    +. (sigma.dv *. (((z *. z) -. 1.) /. sigma.v))
  in
  { y with dv = y.dv +. (y.v *. l') }

(* Measure-valued derivative with the Weibull (mean) and double-sided
   Maxwell vs normal (scale) decompositions; continuation re-run
   primal-only at the coupled positions. *)
let normal_mvd mu sigma key k =
  let k1, rest = Prng.split key in
  let k2, rest = Prng.split rest in
  let k3, rest = Prng.split rest in
  let k4, k5 = Prng.split rest in
  let x = Prng.normal_mean_std k1 mu.v sigma.v in
  let y = k { v = x; dv = 0. } in
  let primal_at z = (k { v = z; dv = 0. }).v in
  let dmu =
    if mu.dv = 0. then 0.
    else begin
      let w = Prng.weibull k2 ~shape:2. ~scale:(Float.sqrt 2.) in
      let c = 1. /. (sigma.v *. Float.sqrt (2. *. Float.pi)) in
      mu.dv *. c
      *. (primal_at (mu.v +. (sigma.v *. w)) -. primal_at (mu.v -. (sigma.v *. w)))
    end
  in
  let dsigma =
    if sigma.dv = 0. then 0.
    else begin
      let m = Prng.maxwell k3 in
      let s = if Prng.bernoulli k4 0.5 then 1. else -1. in
      let eps = Prng.normal k5 in
      sigma.dv /. sigma.v
      *. (primal_at (mu.v +. (sigma.v *. m *. s))
         -. primal_at (mu.v +. (sigma.v *. eps)))
    end
  in
  { y with dv = y.dv +. dmu +. dsigma }

(* Fig. 6: D{flip_ENUM} — enumerate both branches. *)
let flip_enum p _key k =
  let yt = k true in
  let yf = k false in
  { v = (p.v *. yt.v) +. ((1. -. p.v) *. yf.v);
    dv =
      (p.dv *. yt.v) +. (p.v *. yt.dv)
      +. ((1. -. p.v) *. yf.dv)
      -. (p.dv *. yf.v) }

(* Fig. 6: D{flip_REINFORCE}. *)
let flip_reinforce p key k =
  let b = Prng.bernoulli key p.v in
  let y = k b in
  let l' = if b then p.dv /. p.v else p.dv /. (p.v -. 1.) in
  { y with dv = y.dv +. (y.v *. l') }

(* MVD for Bernoulli: d/dp E f(b) = f(true) - f(false). *)
let flip_mvd p key k =
  let b = Prng.bernoulli key p.v in
  let y = k b in
  let dcoupling =
    if p.dv = 0. then 0. else p.dv *. ((k true).v -. (k false).v)
  in
  { y with dv = y.dv +. dcoupling }

(* D{score}: multiply the continuation (product rule in the tangent). *)
let score w _key k = mul w (k ())

let expectation m key = m key (fun x -> x)

let grad_estimate ?(samples = 1000) f theta i key =
  let n = Array.length theta in
  let seeded = Array.mapi (fun j t -> dual t (if j = i then 1. else 0.)) theta in
  let keys = Prng.split_many key samples in
  let total =
    Array.fold_left (fun acc ki -> acc +. (expectation (f seeded) ki).dv) 0. keys
  in
  ignore n;
  total /. float_of_int samples
