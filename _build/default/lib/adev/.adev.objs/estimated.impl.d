lib/adev/estimated.ml: Ad Adev Array Float List Prng Tensor
