lib/adev/forward.mli: Prng
