lib/adev/estimated.mli: Ad Adev Prng
