lib/adev/forward.ml: Array Float Prng
