lib/adev/adev.mli: Ad Dist Prng Tensor
