lib/adev/adev.ml: Ad Array Baseline Dist Fun List Printf Prng Tensor
