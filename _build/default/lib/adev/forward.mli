(** Forward-mode ADEV over dual numbers — a direct transcription of the
    paper's Fig. 6 transformation (Jacobian-vector products).

    This module is deliberately small and scalar-only. It exists (a) as
    the pedagogically faithful counterpart of the formal development in
    Sections 5-6, and (b) as an independent implementation used by the
    test suite to cross-validate the reverse-mode surrogate-loss
    construction in {!module:Adev}: for the same objective, both must
    estimate the same directional derivative in expectation. *)

type dual = { v : float; dv : float }
(** A dual number: primal [v] and tangent [dv]. *)

type 'a p
(** A probabilistic computation over dual-number losses. *)

val return : 'a -> 'a p
val bind : 'a p -> ('a -> 'b p) -> 'b p

val ( let* ) : 'a p -> ('a -> 'b p) -> 'b p

(** {1 Dual arithmetic} *)

val dual : float -> float -> dual
val constant : float -> dual
val add : dual -> dual -> dual
val sub : dual -> dual -> dual
val mul : dual -> dual -> dual
val div : dual -> dual -> dual
val neg : dual -> dual
val exp : dual -> dual
val log : dual -> dual
val sin_d : dual -> dual
val cos_d : dual -> dual

(** {1 Primitives with strategies (Fig. 6)} *)

val normal_reparam : dual -> dual -> dual p
(** [normal_reparam mu sigma]: pathwise [sigma * eps + mu]. *)

val normal_reinforce : dual -> dual -> dual p
(** Score-function: tangent [y' + y * l'] with
    [l' = mu' (x - mu) / sigma^2 + sigma' ((x - mu)^2 / sigma^3 - 1 / sigma)]
    (Fig. 6 with the standard signs). *)

val normal_mvd : dual -> dual -> dual p
(** Measure-valued: Weibull coupling for the mean, double-sided
    Maxwell / normal coupling for the scale. *)

val flip_enum : dual -> bool p
val flip_reinforce : dual -> bool p
val flip_mvd : dual -> bool p

val score : dual -> unit p
(** Multiply the measure by a density factor (the paper's extension of
    ADEV to unnormalized measures). *)

(** {1 Differentiating expectations} *)

val expectation : dual p -> Prng.key -> dual
(** One sample of the (value, derivative-estimate) pair: the [adev]
    transformation applied to [E]. *)

val grad_estimate :
  ?samples:int -> (dual array -> dual p) -> float array -> int ->
  Prng.key -> float
(** [grad_estimate f theta i key]: Monte Carlo estimate of
    [d/dtheta_i E (f theta)] — runs [f] on duals seeded with the [i]-th
    basis tangent vector. *)
