(** Estimated reals — the paper's R-tilde type (Section 3.3).

    A value of type {!t} represents "a real number we can unbiasedly
    estimate": running it with a key produces an AD scalar whose
    expectation is the represented number (and whose reverse-mode
    gradient unbiasedly estimates the number's gradient, when it came
    from {!of_expectation}).

    Unlike a probabilistic computation ([_ Adev.t]), an estimated real
    cannot be sampled inside larger programs — arbitrary post-processing
    would introduce Jensen bias. Instead it composes through the special
    operators here, each of which preserves unbiasedness:

    - {!add}, {!sub}, {!scale}, {!shift}: linearity of expectation;
    - {!mul}: independent keys make the estimators uncorrelated, so the
      product's expectation factorizes;
    - {!exp}: the paper's [exp_R-tilde]. The series
      [e^x = sum_n x^n / n!] is estimated without bias by drawing
      [N ~ Poisson(lambda)] and returning
      [e^lambda lambda^{-N} prod_{i=1}^{N} X_i] with [X_i] independent
      estimates of [x];
    - {!reciprocal_mean}: a Russian-roulette (von Neumann series)
      estimator of [1 / x] for estimators concentrated near a known
      anchor.

    Each operator's unbiasedness is checked statistically in
    [test/test_estimated.ml]. *)

type t

val run : t -> Prng.key -> Ad.t
(** Draw one estimate. *)

val mean : ?samples:int -> t -> Prng.key -> float
(** Monte Carlo average of primal estimates (default 1000). *)

val of_expectation : Ad.t Adev.t -> t
(** [E m]: the number [E m] with the one-sample ADEV estimator. *)

val const : float -> t
(** A degenerate (zero-variance) estimator. *)

val of_fun : (Prng.key -> Ad.t) -> t
(** Wrap an arbitrary unbiased estimator; the caller owns the proof
    obligation that its expectation is the intended number. *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val shift : float -> t -> t

val mul : t -> t -> t
(** Product of two {e independent} estimates: unbiased for the product
    of the represented numbers. *)

val exp : ?rate:float -> t -> t
(** Unbiased estimator of [e^x]; [rate] is the Poisson truncation rate
    (default 2.0 — larger reduces variance, costs more inner
    estimates). *)

val reciprocal_mean : ?anchor:float -> ?horizon_p:float -> t -> t
(** Unbiased estimator of [1 / x] via the geometric series around
    [anchor] (default 1.0): [1/x = (1/a) sum_n (1 - x/a)^n], truncated
    by Russian roulette with continuation probability [horizon_p]
    (default 0.9). Convergence requires [|1 - x/a| < horizon_p] with
    probability 1, i.e. estimates concentrated near the anchor. *)
