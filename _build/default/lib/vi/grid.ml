type combo = { pres : Air.discrete_strategy; pos : Air.discrete_strategy }
type objective = Elbo | Iwae | Rws

let objective_name = function Elbo -> "ELBO" | Iwae -> "IWAE" | Rws -> "RWS"

let combo_name { pres; pos } =
  if pres = pos then Air.strategy_name pres
  else
    Printf.sprintf "%s+%s" (Air.strategy_name pres) (Air.strategy_name pos)

let strategies = [ Air.RE; Air.EN; Air.RE_BL; Air.MV ]

let rows =
  let singles = List.map (fun s -> { pres = s; pos = s }) strategies in
  let mixed =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b -> if a = b then None else Some { pres = a; pos = b })
          strategies)
      strategies
  in
  List.concat_map
    (fun combo -> [ (combo, Elbo); (combo, Iwae) ])
    (singles @ mixed)
  @ [ ({ pres = Air.RE; pos = Air.RE }, Rws) ]

type outcome = Supported | Failed of string

let outcome_ok = function Supported -> true | Failed _ -> false

let air_objective objective =
  match objective with
  | Elbo -> Air.Elbo
  | Iwae -> Air.Iwelbo 2
  | Rws -> Air.Rws 2

let try_ours combo objective key =
  let store = Store.create () in
  Air.register store key;
  let baselines = Air.make_baselines () in
  let images, _ = Data.air_batch key 2 in
  try
    let frame = Store.Frame.make store in
    let objs =
      Air.batch_objectives ~pres:combo.pres ~pos:combo.pos ~baselines
        (air_objective objective) frame images
    in
    let surrogates =
      List.mapi (fun i o -> Adev.expectation o (Prng.fold_in key i)) objs
    in
    let total = Ad.add_list surrogates in
    Ad.backward total;
    let grads = Store.Frame.grads frame in
    if List.for_all (fun (_, g) -> Tensor.all_finite g) grads then Supported
    else Failed "non-finite gradient"
  with
  | Invalid_argument msg -> Failed msg
  | Failure msg -> Failed msg

let try_probe ~probe combo objective key =
  let store = Store.create () in
  Air.register store key;
  let baselines = Air.make_baselines () in
  let images, _ = Data.air_batch key 1 in
  let image = Tensor.slice0 images 0 in
  let frame = Store.Frame.make store in
  let model = Air.model frame image in
  let guide =
    Air.guide ~pres:combo.pres ~pos:combo.pos ~baselines frame image
  in
  try
    probe ~model ~guide ~objective ~pres:combo.pres ~pos:combo.pos key;
    Supported
  with exn -> Failed (Printexc.to_string exn)
