(** Markov chain variational inference (Salimans et al.), one of the
    algorithm families Appendix A.1 says `marginal` unlocks: the
    variational family is an initial distribution pushed through a few
    Metropolis-Hastings steps targeting the model's unnormalized
    posterior, with all chain intermediates marginalized out.

    This module instantiates MCVI for the cone problem. The chain's
    proposals and accept bits are ordinary trace addresses (REINFORCE /
    rigid, because MH acceptance branches on density ratios — exactly
    the non-smooth usage the R-star discipline permits); the kept
    addresses "x" and "y" are a small Gaussian smoothing of the final
    chain state, so the marginal guide is absolutely continuous. *)

val steps : int
(** MH steps in the chain (3). *)

val register : Store.t -> unit
(** Learnable: initial-distribution location/scale, proposal step size,
    smoothing width. *)

val guide_joint : Store.Frame.t -> unit Gen.t
(** The full chain: initial state, per-step proposals and accept flips,
    final smoothed (x, y). *)

val guide : aux_particles:int -> Store.Frame.t -> Trace.t Gen.t
(** The chain marginalized onto x, y. *)

val objective : aux_particles:int -> Store.Frame.t -> Ad.t Adev.t
(** ELBO of the cone model against the marginal MCVI guide. *)

val train :
  ?train_steps:int -> ?lr:float -> aux_particles:int -> Prng.key ->
  Store.t * Train.report list

val guide_samples : Store.t -> int -> Prng.key -> (float * float) list
(** Draw (x, y) from the trained chain (for inspecting posterior
    coverage). *)
