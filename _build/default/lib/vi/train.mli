(** Stochastic-optimization driver: repeatedly estimate an objective's
    gradient with ADEV and apply an optimizer update. *)

type report = {
  step : int;
  objective : float;  (** The (primal) objective estimate at this step. *)
}

val fit :
  store:Store.t ->
  optim:Optim.t ->
  ?direction:Optim.direction ->
  ?samples:int ->
  ?on_step:(report -> unit) ->
  steps:int ->
  objective:(Store.Frame.t -> int -> Ad.t Adev.t) ->
  Prng.key ->
  report list
(** [fit ~store ~optim ~steps ~objective key] runs [steps] updates. The
    objective builder receives a fresh parameter frame and the step
    index (for minibatching) and returns the lambda_ADEV objective;
    [samples] (default 1) gradient estimates are averaged per step.
    Direction defaults to [Ascend]. Returns one report per step, in
    order. *)

val fit_batch :
  store:Store.t ->
  optim:Optim.t ->
  ?direction:Optim.direction ->
  ?on_step:(report -> unit) ->
  steps:int ->
  objectives:(Store.Frame.t -> int -> Ad.t Adev.t list) ->
  Prng.key ->
  report list
(** Like {!fit}, for per-datum objectives that must be estimated with
    {e independent} randomness (so that e.g. an ENUM site in one datum
    does not enumerate jointly with the next datum's sites): each
    objective in the returned list gets its own surrogate and key, and
    the update uses their average. *)

val fit_surrogate :
  store:Store.t ->
  optim:Optim.t ->
  ?direction:Optim.direction ->
  ?on_step:(report -> unit) ->
  steps:int ->
  surrogate:(Store.Frame.t -> int -> Prng.key -> Ad.t) ->
  Prng.key ->
  report list
(** Escape hatch for engines that build their own surrogate losses
    (the monolithic baseline of [lib/baseline]). *)

val eval :
  store:Store.t ->
  ?samples:int ->
  objective:(Store.Frame.t -> Ad.t Adev.t) ->
  Prng.key ->
  float
(** Monte Carlo estimate of an objective at the current parameters,
    without updating them. *)
