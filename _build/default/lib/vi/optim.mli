(** Stochastic gradient optimizers over a parameter {!Store.t}. *)

type t

val sgd : lr:float -> t

val adam :
  ?beta1:float -> ?beta2:float -> ?eps:float -> lr:float -> unit -> t
(** ADAM with the usual defaults (0.9, 0.999, 1e-8). *)

type direction = Ascend | Descend

val step :
  t -> direction -> Store.t -> (string * Tensor.t) list -> unit
(** Apply one update from named gradients. [Ascend] maximizes (variational
    lower bounds), [Descend] minimizes (losses). Gradients whose tensors
    contain non-finite entries are skipped for that parameter (a guard
    against the occasional divergent REINFORCE sample). *)

val reset : t -> unit
(** Clear moment estimates and step counters. *)
