(** The Table 3 expressivity grid: which (gradient-strategy combination,
    objective) pairs each system can run on the AIR model.

    "Ours" attempts one real gradient step with the modular ADEV
    pipeline and records success iff every parameter gradient is finite.
    The baseline column is filled in by [lib/baseline]'s monolithic
    engine via the probe hook below (the engine either produces a
    surrogate or raises its [Unsupported] exception, exactly like a
    fixed-menu PPL). *)

type combo = {
  pres : Air.discrete_strategy;  (** presence-flip strategy *)
  pos : Air.discrete_strategy;  (** position-categorical strategy *)
}

type objective = Elbo | Iwae | Rws

val objective_name : objective -> string
val combo_name : combo -> string

val rows : (combo * objective) list
(** The grid: every single strategy and every mixed pair, under ELBO and
    IWAE, plus the RWS row. *)

type outcome = Supported | Failed of string

val outcome_ok : outcome -> bool

val try_ours : combo -> objective -> Prng.key -> outcome
(** Run one gradient step of the modular system on a tiny AIR batch. *)

val try_probe :
  probe:
    (model:unit Gen.t ->
    guide:unit Gen.t ->
    objective:objective ->
    pres:Air.discrete_strategy ->
    pos:Air.discrete_strategy ->
    Prng.key ->
    unit) ->
  combo ->
  objective ->
  Prng.key ->
  outcome
(** Evaluate a baseline system: [probe] receives the AIR model/guide and
    must either compute a gradient estimate or raise; the raise message
    becomes [Failed]. *)
