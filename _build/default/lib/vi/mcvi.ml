let steps = 3

(* Unnormalized log posterior of the cone model at a (rigid) point. *)
let log_target x y =
  let log_normal v mu sigma =
    (-0.5 *. (((v -. mu) /. sigma) ** 2.))
    -. Float.log sigma
    -. (0.5 *. Float.log (2. *. Float.pi))
  in
  log_normal x 0. 3. +. log_normal y 0. 3.
  +. log_normal 5. ((x *. x) +. (y *. y)) 0.5

let register store =
  let scalar name v = Store.ensure store name (fun () -> Tensor.scalar v) in
  scalar "mcvi.init.mx" 0.5;
  scalar "mcvi.init.my" 0.5;
  scalar "mcvi.init.rho" 0.5;
  scalar "mcvi.step.rho" (-0.5);
  scalar "mcvi.smooth.rho" (-2.)

let pos rho = Ad.add_scalar 1e-3 (Ad.softplus rho)

let guide_joint frame =
  let p = Store.Frame.get frame in
  let init_std = pos (p "mcvi.init.rho") in
  let step_std = pos (p "mcvi.step.rho") in
  let smooth_std = pos (p "mcvi.smooth.rho") in
  let open Gen.Syntax in
  let* x0 =
    Gen.sample (Dist.normal_reinforce (p "mcvi.init.mx") init_std) "x0"
  in
  let* y0 =
    Gen.sample (Dist.normal_reinforce (p "mcvi.init.my") init_std) "y0"
  in
  (* Metropolis-Hastings chain over rigid states. The proposals are
     trace addresses; the accept bit's probability is the usual MH
     ratio, computed on primal values (a legal non-smooth use of
     REINFORCE samples). *)
  let rec chain k x y =
    if k > steps then Gen.return (x, y)
    else
      let* px =
        Gen.sample
          (Dist.normal_reinforce (Ad.scalar x) step_std)
          (Printf.sprintf "prop_x%d" k)
      in
      let* py =
        Gen.sample
          (Dist.normal_reinforce (Ad.scalar y) step_std)
          (Printf.sprintf "prop_y%d" k)
      in
      let pxv = Gen.rigid px and pyv = Gen.rigid py in
      let alpha =
        Float.min 1. (Float.exp (log_target pxv pyv -. log_target x y))
      in
      let* accept =
        Gen.sample
          (Dist.flip_reinforce (Ad.scalar alpha))
          (Printf.sprintf "accept%d" k)
      in
      if accept then chain (k + 1) pxv pyv else chain (k + 1) x y
  in
  let* xk, yk = chain 1 (Gen.rigid x0) (Gen.rigid y0) in
  (* Smooth the final state so the marginal over (x, y) has a density. *)
  let* _ = Gen.sample (Dist.normal_reinforce (Ad.scalar xk) smooth_std) "x" in
  let* _ = Gen.sample (Dist.normal_reinforce (Ad.scalar yk) smooth_std) "y" in
  Gen.return ()

(* Reverse kernel over the chain auxiliaries given (x, y): replay an
   independent chain from the learned initial distribution. All its
   densities are finite everywhere, so importance weights are finite. *)
let reverse frame _kept =
  let p = Store.Frame.get frame in
  let init_std = pos (p "mcvi.init.rho") in
  let step_std = pos (p "mcvi.step.rho") in
  let open Gen.Syntax in
  let prog =
    let* x0 =
      Gen.sample (Dist.normal_reinforce (p "mcvi.init.mx") init_std) "x0"
    in
    let* y0 =
      Gen.sample (Dist.normal_reinforce (p "mcvi.init.my") init_std) "y0"
    in
    let rec aux k x y =
      if k > steps then Gen.return ()
      else
        let* px =
          Gen.sample
            (Dist.normal_reinforce (Ad.scalar x) step_std)
            (Printf.sprintf "prop_x%d" k)
        in
        let* py =
          Gen.sample
            (Dist.normal_reinforce (Ad.scalar y) step_std)
            (Printf.sprintf "prop_y%d" k)
        in
        let pxv = Gen.rigid px and pyv = Gen.rigid py in
        let alpha =
          Float.min 1. (Float.exp (log_target pxv pyv -. log_target x y))
        in
        let* accept =
          Gen.sample
            (Dist.flip_reinforce (Ad.scalar alpha))
            (Printf.sprintf "accept%d" k)
        in
        if accept then aux (k + 1) pxv pyv else aux (k + 1) x y
    in
    aux 1 (Gen.rigid x0) (Gen.rigid y0)
  in
  Gen.Packed prog

let guide ~aux_particles frame =
  Gen.marginal ~keep:[ "x"; "y" ] (guide_joint frame)
    (Gen.importance ~particles:aux_particles (reverse frame))

let objective ~aux_particles frame =
  Objectives.elbo ~model:Cone.model ~guide:(guide ~aux_particles frame)

let train ?(train_steps = 1000) ?(lr = 0.03) ~aux_particles key =
  let store = Store.create () in
  register store;
  let optim = Optim.adam ~lr () in
  let reports =
    Train.fit ~store ~optim ~steps:train_steps
      ~objective:(fun frame _ -> objective ~aux_particles frame)
      key
  in
  (store, reports)

let guide_samples store n key =
  let frame = Store.Frame.make store in
  List.init n (fun i ->
      let _, trace, _ =
        Gen.sample_prior (guide ~aux_particles:1 frame) (Prng.fold_in key i)
      in
      (Trace.get_float "x" trace, Trace.get_float "y" trace))
