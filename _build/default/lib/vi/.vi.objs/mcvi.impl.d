lib/vi/mcvi.ml: Ad Cone Dist Float Gen List Objectives Optim Printf Prng Store Tensor Trace Train
