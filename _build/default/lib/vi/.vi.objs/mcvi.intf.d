lib/vi/mcvi.mli: Ad Adev Gen Prng Store Trace Train
