lib/vi/optim.mli: Store Tensor
