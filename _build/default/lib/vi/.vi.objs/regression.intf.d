lib/vi/regression.mli: Data Gen Prng Store Train
