lib/vi/ssvae.mli: Gen Optim Prng Store Tensor
