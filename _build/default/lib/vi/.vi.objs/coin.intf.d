lib/vi/coin.mli: Gen Prng Store Train
