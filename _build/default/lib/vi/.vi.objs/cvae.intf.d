lib/vi/cvae.mli: Ad Adev Gen Optim Prng Store Tensor
