lib/vi/objectives.ml: Ad Adev Float Gen
