lib/vi/objectives.mli: Ad Adev Gen Trace
