lib/vi/train.ml: Ad Adev List Optim Prng Stdlib Store Tensor
