lib/vi/cone.ml: Ad Dist Float Gen List Objectives Optim Printf Prng Store Tensor Trace Train
