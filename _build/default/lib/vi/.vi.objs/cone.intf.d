lib/vi/cone.mli: Ad Adev Gen Prng Store Trace Train
