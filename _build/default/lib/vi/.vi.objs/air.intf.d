lib/vi/air.mli: Ad Adev Gen Optim Prng Store Tensor
