lib/vi/optim.ml: Float Hashtbl List Store Tensor
