lib/vi/grid.mli: Air Gen Prng
