lib/vi/train.mli: Ad Adev Optim Prng Store
