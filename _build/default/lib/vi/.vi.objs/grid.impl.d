lib/vi/grid.ml: Ad Adev Air Data List Printexc Printf Prng Store Tensor
