lib/vi/cvae.ml: Ad Adev Array Data Dist Gen Layer List Objectives Prng Stdlib Store Tensor Train Unix
