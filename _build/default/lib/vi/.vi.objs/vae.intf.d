lib/vi/vae.mli: Ad Adev Gen Prng Store Tensor Train
