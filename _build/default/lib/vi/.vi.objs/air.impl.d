lib/vi/air.ml: Ad Adev Array Baseline Data Dist Gen Hashtbl Layer Lazy List Objectives Printf Prng Stdlib Store String Tensor Trace Train Unix
