lib/vi/ssvae.ml: Ad Adev Array Data Dist Gen Layer Lazy List Objectives Prng Stdlib Store Tensor Train Unix
