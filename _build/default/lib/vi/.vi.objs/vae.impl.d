lib/vi/vae.ml: Ad Adev Array Data Dist Gen Layer Objectives Optim Prng Store Tensor Train Unix
