lib/vi/regression.ml: Ad Array Data Dist Gen List Objectives Optim Prng Store Tensor Trace Train Unix
