lib/vi/coin.ml: Ad Dist Float Fun Gen List Objectives Optim Store Tensor Train Unix
