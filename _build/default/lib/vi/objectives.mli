(** Variational objectives as lambda_ADEV programs.

    Every objective here is an ordinary [Ad.t Adev.t] value built from
    the compiled [Gen.simulate] / [Gen.log_density] of user model and
    guide programs — the paper's Section 2 workflow. Users are not
    limited to this menu: any composition of [Adev] and [Gen] evaluators
    is a valid objective (the point of programmable VI); these are the
    standard ones used by the experiments.

    Conventions: the {e model} is a generative program whose [observe]
    statements absorb the data, defined over exactly the addresses the
    {e guide} samples. All objectives are to be {e maximized}
    ([Optim.Ascend]) unless noted. *)

val elbo : model:'a Gen.t -> guide:'b Gen.t -> Ad.t Adev.t
(** The evidence lower bound,
    [E_{z ~ guide} (log p(z, y) - log q(z))] (Eqn. 3). With [marginal] /
    [normalize] in either program, densities are unbiased stochastic
    estimates and the objective is the correspondingly looser bound of
    Appendix A.2. *)

val iwelbo : particles:int -> model:'a Gen.t -> guide:'b Gen.t -> Ad.t Adev.t
(** The importance-weighted ELBO of Burda et al.:
    [E log (1/N sum_i p(z_i, y) / q(z_i))]. *)

val hvi :
  keep:string list ->
  reverse:(Trace.t -> Gen.packed) ->
  ?aux_particles:int ->
  model:'a Gen.t ->
  guide_joint:'b Gen.t ->
  unit ->
  Ad.t Adev.t
(** Hierarchical VI: the guide is [guide_joint] (which samples auxiliary
    variables besides [keep]) marginalized onto [keep] with importance
    sampling from the [reverse] kernel; [aux_particles] = 1 gives HVI,
    [> 1] gives IWHVI (Sobolev and Vetrov). Then the ordinary ELBO is
    applied to the marginal guide. *)

val diwhvi :
  particles:int ->
  keep:string list ->
  reverse:(Trace.t -> Gen.packed) ->
  aux_particles:int ->
  model:'a Gen.t ->
  guide_joint:'b Gen.t ->
  Ad.t Adev.t
(** Doubly importance-weighted HVI: IWELBO over the marginalized guide
    (SIR estimates of marginal densities inside the IWELBO objective). *)

val qwake :
  particles:int -> model:'a Gen.t -> proposal:'b Gen.t -> guide:'c Gen.t ->
  Ad.t Adev.t
(** The reweighted-wake-sleep wake-phase guide objective (Appendix B):
    [E_{z ~ SIR(model, proposal)} (- log q(z))], with the SIR proposal
    [proposal] held fixed (pass a detached-parameter guide) and [guide]
    carrying the live parameters. Maximizing it minimizes an inclusive
    (forward) KL surrogate. *)

val pwake :
  particles:int -> model:'a Gen.t -> proposal:'b Gen.t -> Ad.t Adev.t
(** The wake-phase model objective (Appendix B):
    [E_{(z, w) ~ SIR(model, proposal)} (log p(z, y) - log w)]. *)

val forward_kl_sample : model_sample:Trace.t -> guide:'a Gen.t -> Ad.t Adev.t
(** [- log q(z)] at a trace sampled from the true joint — the
    wake-sleep "sleep" term, usable when the model can be forward
    sampled. To be maximized. *)

val symmetric_elbo :
  particles:int -> model:'a Gen.t -> proposal:'b Gen.t -> guide:'c Gen.t ->
  Ad.t Adev.t
(** A symmetric-divergence objective in the style of Domke's diagnostic:
    the average of the ELBO and the SIR-approximated forward-KL term
    ([qwake]); exercises objective composition beyond the standard
    menu. *)
