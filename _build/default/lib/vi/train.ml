type report = { step : int; objective : float }

let fit ~store ~optim ?(direction = Optim.Ascend) ?(samples = 1)
    ?(on_step = fun _ -> ()) ~steps ~objective key =
  let reports = ref [] in
  for step = 0 to steps - 1 do
    let frame = Store.Frame.make store in
    let obj = objective frame step in
    let key_step = Prng.fold_in key step in
    let surrogate = Adev.expectation_mean ~samples obj key_step in
    Ad.backward surrogate;
    Optim.step optim direction store (Store.Frame.grads frame);
    let report =
      { step; objective = Tensor.to_scalar (Ad.value surrogate) }
    in
    on_step report;
    reports := report :: !reports
  done;
  List.rev !reports

let fit_batch ~store ~optim ?(direction = Optim.Ascend)
    ?(on_step = fun _ -> ()) ~steps ~objectives key =
  let reports = ref [] in
  for step = 0 to steps - 1 do
    let frame = Store.Frame.make store in
    let objs = objectives frame step in
    let key_step = Prng.fold_in key step in
    let n = Stdlib.max 1 (List.length objs) in
    let surrogates =
      List.mapi
        (fun i obj -> Adev.expectation obj (Prng.fold_in key_step i))
        objs
    in
    let surrogate = Ad.scale (1. /. float_of_int n) (Ad.add_list surrogates) in
    Ad.backward surrogate;
    Optim.step optim direction store (Store.Frame.grads frame);
    let report = { step; objective = Tensor.to_scalar (Ad.value surrogate) } in
    on_step report;
    reports := report :: !reports
  done;
  List.rev !reports

let fit_surrogate ~store ~optim ?(direction = Optim.Ascend)
    ?(on_step = fun _ -> ()) ~steps ~surrogate key =
  let reports = ref [] in
  for step = 0 to steps - 1 do
    let frame = Store.Frame.make store in
    let s = surrogate frame step (Prng.fold_in key step) in
    Ad.backward s;
    Optim.step optim direction store (Store.Frame.grads frame);
    let report = { step; objective = Tensor.to_scalar (Ad.value s) } in
    on_step report;
    reports := report :: !reports
  done;
  List.rev !reports

let eval ~store ?(samples = 100) ~objective key =
  let frame = Store.Frame.make store in
  Adev.estimate ~samples (objective frame) key
