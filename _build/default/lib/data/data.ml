let sprite_side = 12
let sprite_dim = sprite_side * sprite_side
let canvas_side = 16
let canvas_dim = canvas_side * canvas_side
let patch_side = 6
let num_positions = 4
let max_objects = 2

(* Seven-segment digit rendering. Segments: a = top, b = top-right,
   c = bottom-right, d = bottom, e = bottom-left, f = top-left,
   g = middle. *)
let segments_of_digit = function
  | 0 -> [ 'a'; 'b'; 'c'; 'd'; 'e'; 'f' ]
  | 1 -> [ 'b'; 'c' ]
  | 2 -> [ 'a'; 'b'; 'g'; 'e'; 'd' ]
  | 3 -> [ 'a'; 'b'; 'g'; 'c'; 'd' ]
  | 4 -> [ 'f'; 'g'; 'b'; 'c' ]
  | 5 -> [ 'a'; 'f'; 'g'; 'c'; 'd' ]
  | 6 -> [ 'a'; 'f'; 'g'; 'e'; 'c'; 'd' ]
  | 7 -> [ 'a'; 'b'; 'c' ]
  | 8 -> [ 'a'; 'b'; 'c'; 'd'; 'e'; 'f'; 'g' ]
  | 9 -> [ 'a'; 'b'; 'c'; 'd'; 'f'; 'g' ]
  | d -> invalid_arg (Printf.sprintf "Data.digit_glyph: %d" d)

(* Draw the glyph in a 10x6 box centered in the 12x12 sprite. *)
let digit_glyph d =
  let segs = segments_of_digit d in
  let on seg = List.mem seg segs in
  let top = 1 and left = 3 in
  let h = 10 and w = 6 in
  Tensor.init [| sprite_side; sprite_side |] (fun ix ->
      let r = ix.(0) - top and c = ix.(1) - left in
      if r < 0 || r >= h || c < 0 || c >= w then 0.
      else begin
        let mid = h / 2 in
        let hit =
          (on 'a' && r = 0)
          || (on 'g' && r = mid)
          || (on 'd' && r = h - 1)
          || (on 'f' && c = 0 && r <= mid)
          || (on 'e' && c = 0 && r >= mid)
          || (on 'b' && c = w - 1 && r <= mid)
          || (on 'c' && c = w - 1 && r >= mid)
        in
        if hit then 1. else 0.
      end)

let shift_image img dr dc =
  let side = (Tensor.shape img).(0) in
  Tensor.init [| side; side |] (fun ix ->
      let r = ix.(0) - dr and c = ix.(1) - dc in
      if r < 0 || r >= side || c < 0 || c >= side then 0.
      else Tensor.get img [| r; c |])

let flip_pixels key rate img =
  let u = Prng.uniform_tensor key (Tensor.shape img) in
  Tensor.map2 (fun ui xi -> if ui < rate then 1. -. xi else xi) u img

let sprite ?(noise = 0.02) key d =
  let k1, rest = Prng.split key in
  let k2, k3 = Prng.split rest in
  let dr = Prng.categorical k1 [| 1.; 1.; 1. |] - 1 in
  let dc = Prng.categorical k2 [| 1.; 1.; 1. |] - 1 in
  flip_pixels k3 noise (shift_image (digit_glyph d) dr dc)

let digit_batch ?noise key n =
  let ks = Prng.split_many key n in
  let labels = Array.map (fun k -> Prng.categorical k (Array.make 10 1.)) ks in
  let images =
    Array.to_list
      (Array.mapi
         (fun i k -> Tensor.flatten (sprite ?noise (Prng.fold_in k 1) labels.(i)))
         ks)
  in
  (Tensor.stack0 images, labels)

(* Nearest-neighbour downsample of the 12x12 glyph to 6x6. *)
let patch_glyph d =
  let g = digit_glyph d in
  Tensor.init [| patch_side; patch_side |] (fun ix ->
      let r = ix.(0) * sprite_side / patch_side in
      let c = ix.(1) * sprite_side / patch_side in
      (* A patch cell is on when any covered source pixel is on. *)
      let any = ref 0. in
      for dr = 0 to (sprite_side / patch_side) - 1 do
        for dc = 0 to (sprite_side / patch_side) - 1 do
          if Tensor.get g [| r + dr; c + dc |] > 0.5 then any := 1.
        done
      done;
      !any)

let position_offset i =
  if i < 0 || i >= num_positions then
    invalid_arg (Printf.sprintf "Data.position_offset: %d" i);
  let step = canvas_side - patch_side in
  (i / 2 * step, i mod 2 * step)

let render_scene objs =
  let canvas = Array.make canvas_dim 0. in
  List.iter
    (fun (digit, pos) ->
      let patch = patch_glyph digit in
      let r0, c0 = position_offset pos in
      for r = 0 to patch_side - 1 do
        for c = 0 to patch_side - 1 do
          let p = Tensor.get patch [| r; c |] in
          let i = ((r0 + r) * canvas_side) + (c0 + c) in
          (* Probabilistic OR keeps overlaps in [0, 1]. *)
          canvas.(i) <- 1. -. ((1. -. canvas.(i)) *. (1. -. p))
        done
      done)
    objs;
  Tensor.of_array [| canvas_side; canvas_side |] canvas

let air_scene key =
  let k1, rest = Prng.split key in
  let k2, k3 = Prng.split rest in
  let count = Prng.categorical k1 (Array.make (max_objects + 1) 1.) in
  let positions = Prng.permutation k2 num_positions in
  let objs =
    List.init count (fun i ->
        let digit = Prng.categorical (Prng.fold_in k3 i) (Array.make 10 1.) in
        (digit, positions.(i)))
  in
  let img = flip_pixels (Prng.fold_in k3 99) 0.01 (render_scene objs) in
  (Tensor.flatten img, count)

let air_batch key n =
  let ks = Prng.split_many key n in
  let scenes = Array.map air_scene ks in
  (Tensor.stack0 (Array.to_list (Array.map fst scenes)), Array.map snd scenes)

let as_square img =
  match Tensor.rank img with
  | 2 -> img
  | 1 ->
    let n = Tensor.size img in
    let side = int_of_float (Float.round (Float.sqrt (float_of_int n))) in
    Tensor.reshape [| side; side |] img
  | _ -> invalid_arg "Data: expected a rank-1 or rank-2 image"

let quadrant img q =
  let img = as_square img in
  let side = (Tensor.shape img).(0) in
  let half = side / 2 in
  let r0 = q / 2 * half and c0 = q mod 2 * half in
  Tensor.init [| half; half |] (fun ix ->
      Tensor.get img [| r0 + ix.(0); c0 + ix.(1) |])

let without_quadrant img q =
  let img = as_square img in
  let side = (Tensor.shape img).(0) in
  let half = side / 2 in
  let r0 = q / 2 * half and c0 = q mod 2 * half in
  let kept = ref [] in
  for r = side - 1 downto 0 do
    for c = side - 1 downto 0 do
      if not (r >= r0 && r < r0 + half && c >= c0 && c < c0 + half) then
        kept := Tensor.get img [| r; c |] :: !kept
    done
  done;
  Tensor.of_list1 !kept

type regression_datum = { ruggedness : float; in_africa : bool; log_gdp : float }

let regression_truth = (9., -1.8, -0.2, 0.35)

let regression_data key n =
  let a, ba, br, bar = regression_truth in
  Array.map
    (fun k ->
      let k1, rest = Prng.split k in
      let k2, k3 = Prng.split rest in
      let ruggedness = Prng.uniform_range k1 0. 6. in
      let in_africa = Prng.bernoulli k2 0.4 in
      let c = if in_africa then 1. else 0. in
      let mean = a +. (ba *. c) +. (br *. ruggedness) +. (bar *. c *. ruggedness) in
      { ruggedness; in_africa; log_gdp = Prng.normal_mean_std k3 mean 0.5 })
    (Prng.split_many key n)

let ascii img =
  let img = as_square img in
  let side = (Tensor.shape img).(0) in
  let buf = Buffer.create (side * (side + 1)) in
  for r = 0 to side - 1 do
    for c = 0 to side - 1 do
      let x = Tensor.get img [| r; c |] in
      Buffer.add_char buf
        (if x > 0.75 then '#' else if x > 0.35 then '+' else '.')
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
