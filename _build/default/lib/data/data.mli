(** Synthetic datasets standing in for the paper's experimental data.

    The paper trains on MNIST (VAE family) and on multi-MNIST canvases
    (AIR). This container has no MNIST, so we substitute procedurally
    rendered seven-segment digit sprites with random jitter and pixel
    noise — binary images exercising the same code paths (Bernoulli
    pixel likelihoods, discrete object counts, continuous pose /
    style latents). All generators are deterministic in the PRNG key. *)

val sprite_side : int
(** Sprite height/width (12). *)

val sprite_dim : int
(** Flattened sprite size (144). *)

val canvas_side : int
(** AIR canvas height/width (16). *)

val canvas_dim : int
(** Flattened canvas size (256). *)

val patch_side : int
(** AIR object patch height/width (6). *)

val num_positions : int
(** Number of grid positions for AIR objects (4, a 2x2 grid of non-overlapping cells). *)

val max_objects : int
(** Maximum object count in an AIR scene (2). *)

(** {1 Digit sprites} *)

val digit_glyph : int -> Tensor.t
(** The clean [sprite_side] x [sprite_side] binary glyph for a digit
    class in [0, 9] (seven-segment rendering). *)

val sprite : ?noise:float -> Prng.key -> int -> Tensor.t
(** A jittered sprite: the glyph shifted by up to one pixel in each
    direction with independent pixel flips (default rate 0.02). *)

val digit_batch :
  ?noise:float -> Prng.key -> int -> Tensor.t * int array
(** [digit_batch key n]: a batch of flattened sprites (shape
    [n x sprite_dim]) with their digit labels. *)

(** {1 AIR scenes} *)

val patch_glyph : int -> Tensor.t
(** The digit glyph downsampled to [patch_side] x [patch_side]. *)

val position_offset : int -> int * int
(** Row/column offset of one of the {!num_positions} grid cells on the
    canvas. *)

val render_scene : (int * int) list -> Tensor.t
(** Render (digit class, position index) objects onto a binary canvas
    using probabilistic-OR composition. *)

val air_scene : Prng.key -> Tensor.t * int
(** A random scene: a count in [0, max_objects], distinct positions,
    random digit classes, light pixel noise. Returns the flattened
    canvas and the true object count. *)

val air_batch : Prng.key -> int -> Tensor.t * int array
(** [air_batch key n]: flattened canvases (shape [n x canvas_dim]) with
    true counts. *)

(** {1 Quadrants (conditional VAE)} *)

val quadrant : Tensor.t -> int -> Tensor.t
(** [quadrant img q]: the [q]-th 6x6 quadrant (0 = top-left, 1 =
    top-right, 2 = bottom-left, 3 = bottom-right) of a flattened or
    square sprite. *)

val without_quadrant : Tensor.t -> int -> Tensor.t
(** The flattened complement (108 pixels) of a quadrant, in row-major
    order. *)

(** {1 Bayesian linear regression (Appendix D.2)} *)

type regression_datum = { ruggedness : float; in_africa : bool; log_gdp : float }

val regression_truth : float * float * float * float
(** The generating coefficients [(a, b_africa, b_rugged, b_interact)]. *)

val regression_data : Prng.key -> int -> regression_datum array
(** Synthetic terrain-ruggedness regression data from the documented
    coefficients plus observation noise 0.5. *)

(** {1 Rendering} *)

val ascii : Tensor.t -> string
(** Crude ASCII-art rendering of a square (or flattenable-square) binary
    image, for terminal demos. *)
