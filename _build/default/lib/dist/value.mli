(** Heterogeneous values stored at trace addresses.

    The paper's type system distinguishes smooth reals (R) from reals
    that may be used non-smoothly (R star). In this embedding, a [Real]
    carries an AD node: samples from REPARAM-annotated primitives arrive
    as non-leaf nodes (gradients flow through them, so they must be used
    smoothly), while samples from REINFORCE/MVD primitives arrive as
    detached leaves (the R* discipline). {!to_float_rigid} is the runtime
    analogue of the [<: R* x R* -> B] typing rule: it refuses values that
    carry a gradient path. *)

type t =
  | Real of Ad.t  (** A (possibly tensor-valued) differentiable value. *)
  | Bool of bool
  | Int of int

exception Type_error of string
(** Raised when a value is used at the wrong type. *)

exception Smoothness_error of string
(** Raised when a smooth ([R]-typed) value is used non-smoothly. *)

val real : float -> t
val tensor : Tensor.t -> t

val to_ad : t -> Ad.t
(** @raise Type_error on [Bool] or [Int]. *)

val to_float : t -> float
(** Primal scalar, regardless of smoothness. *)

val to_bool : t -> bool
val to_int : t -> int

val to_float_rigid : t -> float
(** The primal value of a [Real], but only if it carries no gradient
    path (it is a leaf of the AD graph) — the runtime analogue of
    requiring type R*.
    @raise Smoothness_error on a non-leaf (smooth) value. *)

val equal_primal : t -> t -> bool
(** Structural equality on primal content (no gradient comparison). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
