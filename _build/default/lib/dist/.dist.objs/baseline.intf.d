lib/dist/baseline.mli:
