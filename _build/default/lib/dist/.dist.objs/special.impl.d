lib/dist/special.ml: Ad Array Float Tensor
