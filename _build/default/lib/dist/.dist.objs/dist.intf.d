lib/dist/dist.mli: Ad Baseline Prng Value
