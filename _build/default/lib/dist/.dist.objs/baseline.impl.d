lib/dist/baseline.ml:
