lib/dist/value.mli: Ad Format Tensor
