lib/dist/special.mli: Ad
