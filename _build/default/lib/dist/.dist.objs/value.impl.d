lib/dist/value.ml: Ad Format Tensor
