lib/dist/dist.ml: Ad Array Baseline Float Fun List Prng Special Tensor Value
