type t = Real of Ad.t | Bool of bool | Int of int

exception Type_error of string
exception Smoothness_error of string

let real x = Real (Ad.scalar x)
let tensor x = Real (Ad.const x)

let to_ad = function
  | Real a -> a
  | Bool _ -> raise (Type_error "expected a real value, got a boolean")
  | Int _ -> raise (Type_error "expected a real value, got an integer")

let to_float v = Tensor.to_scalar (Ad.value (to_ad v))

let to_bool = function
  | Bool b -> b
  | Real _ -> raise (Type_error "expected a boolean, got a real value")
  | Int _ -> raise (Type_error "expected a boolean, got an integer")

let to_int = function
  | Int i -> i
  | Real _ -> raise (Type_error "expected an integer, got a real value")
  | Bool _ -> raise (Type_error "expected an integer, got a boolean")

let to_float_rigid = function
  | Real a when Ad.is_leaf a -> Tensor.to_scalar (Ad.value a)
  | Real _ ->
    raise
      (Smoothness_error
         "a smooth (R-typed) sample was used non-smoothly; use a \
          REINFORCE/MVD-annotated primitive or stop_grad")
  | v -> to_float v

let equal_primal a b =
  match (a, b) with
  | Real x, Real y -> Tensor.equal (Ad.value x) (Ad.value y)
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | _ -> false

let pp ppf = function
  | Real a -> Tensor.pp ppf (Ad.value a)
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i

let to_string v = Format.asprintf "%a" pp v
