(* Lanczos approximation (g = 7, n = 9 coefficients). *)
let lanczos =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec lgamma x =
  if x < 0.5 then
    (* Reflection: Gamma(x) Gamma(1-x) = pi / sin(pi x). *)
    Float.log (Float.pi /. Float.abs (Float.sin (Float.pi *. x)))
    -. lgamma (1. -. x)
  else begin
    let x = x -. 1. in
    let a = ref lanczos.(0) in
    let t = x +. 7.5 in
    for i = 1 to 8 do
      a := !a +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    (0.5 *. Float.log (2. *. Float.pi))
    +. ((x +. 0.5) *. Float.log t)
    -. t
    +. Float.log !a
  end

(* Recurrence to push the argument above 6, then the asymptotic series. *)
let rec digamma x =
  if x < 6. then digamma (x +. 1.) -. (1. /. x)
  else begin
    let inv = 1. /. x in
    let inv2 = inv *. inv in
    Float.log x
    -. (0.5 *. inv)
    -. (inv2
       *. ((1. /. 12.)
          -. (inv2 *. ((1. /. 120.) -. (inv2 *. (1. /. 252.))))))
  end

let lgamma_ad a =
  let av = Ad.value a in
  Ad.custom
    ~value:(Tensor.map lgamma av)
    ~parents:[ (a, fun g -> Tensor.mul g (Tensor.map digamma av)) ]

let log_beta a b =
  Ad.O.(lgamma_ad a + lgamma_ad b - lgamma_ad (Ad.add a b))
