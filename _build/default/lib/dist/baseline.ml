type t = { mutable mean : float; mutable count : int; decay : float }

let create ?(decay = 0.9) () = { mean = 0.; count = 0; decay }
let value t = t.mean

let update t x =
  if t.count = 0 then t.mean <- x
  else t.mean <- (t.decay *. t.mean) +. ((1. -. t.decay) *. x);
  t.count <- t.count + 1

let observations t = t.count
