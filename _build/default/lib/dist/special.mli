(** Special functions needed by log-densities: log-gamma and digamma,
    with AD support (the derivative of [lgamma] is [digamma]). *)

val lgamma : float -> float
(** Natural log of the absolute value of the gamma function, for
    positive arguments (Lanczos approximation, ~1e-13 relative error). *)

val digamma : float -> float
(** Logarithmic derivative of the gamma function, for positive
    arguments (recurrence + asymptotic series). *)

val lgamma_ad : Ad.t -> Ad.t
(** Elementwise [lgamma] with derivative [digamma]. *)

val log_beta : Ad.t -> Ad.t -> Ad.t
(** [log_beta a b = lgamma a + lgamma b - lgamma (a + b)] for rank-0
    nodes. *)
