(** Running-mean control-variate baselines for score-function (REINFORCE)
    gradient estimators.

    A baseline cell tracks an exponential moving average of the losses
    observed at a sample site; subtracting it from the loss inside the
    score-function term reduces variance without introducing bias
    (the baseline is independent of the current sample). This is the
    "BL" strategy of Table 3. *)

type t

val create : ?decay:float -> unit -> t
(** A fresh cell. [decay] (default 0.9) is the EMA coefficient. *)

val value : t -> float
(** Current baseline (0 until the first update). *)

val update : t -> float -> unit
(** Fold one observed loss into the moving average. *)

val observations : t -> int
(** Number of updates so far. *)
