type activation = Linear | Relu | Tanh | Sigmoid | Softplus

let apply_activation act x =
  match act with
  | Linear -> x
  | Relu -> Ad.relu x
  | Tanh -> Ad.tanh x
  | Sigmoid -> Ad.sigmoid x
  | Softplus -> Ad.softplus x

let glorot key ~in_dim ~out_dim =
  let limit = Float.sqrt (6. /. float_of_int (in_dim + out_dim)) in
  Tensor.map
    (fun u -> (2. *. limit *. u) -. limit)
    (Prng.uniform_tensor key [| in_dim; out_dim |])

let dense_register store ~name ~in_dim ~out_dim ~key =
  Store.ensure store (name ^ ".w") (fun () -> glorot key ~in_dim ~out_dim);
  Store.ensure store (name ^ ".b") (fun () -> Tensor.zeros [| out_dim |])

let dense frame ~name ?(act = Linear) x =
  let w = Store.Frame.get frame (name ^ ".w") in
  let b = Store.Frame.get frame (name ^ ".b") in
  apply_activation act (Ad.add (Ad.matmul x w) b)

let mlp_register store ~name ~dims ~key =
  let rec loop i = function
    | a :: (b :: _ as rest) ->
      dense_register store
        ~name:(Printf.sprintf "%s.%d" name i)
        ~in_dim:a ~out_dim:b ~key:(Prng.fold_in key i);
      loop (i + 1) rest
    | [ _ ] | [] -> ()
  in
  loop 0 dims

let mlp frame ~name ~layers ?(hidden_act = Softplus) ?(final_act = Linear) x =
  let rec loop i h =
    if i >= layers then h
    else
      let act = if i = layers - 1 then final_act else hidden_act in
      loop (i + 1) (dense frame ~name:(Printf.sprintf "%s.%d" name i) ~act h)
  in
  loop 0 x
