lib/nn/store.mli: Ad Tensor
