lib/nn/store.ml: Ad Hashtbl List Tensor
