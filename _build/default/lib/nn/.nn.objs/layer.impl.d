lib/nn/layer.ml: Ad Float Printf Prng Store Tensor
