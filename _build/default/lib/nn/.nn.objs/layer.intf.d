lib/nn/layer.mli: Ad Prng Store Tensor
