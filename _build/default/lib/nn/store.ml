type t = {
  tensors : (string, Tensor.t) Hashtbl.t;
  mutable order : string list;  (* reverse registration order *)
}

let create () = { tensors = Hashtbl.create 16; order = [] }

let ensure t name init =
  if not (Hashtbl.mem t.tensors name) then begin
    Hashtbl.add t.tensors name (init ());
    t.order <- name :: t.order
  end

let mem t name = Hashtbl.mem t.tensors name

let tensor t name =
  match Hashtbl.find_opt t.tensors name with
  | Some x -> x
  | None -> raise Not_found

let set t name x =
  if not (Hashtbl.mem t.tensors name) then raise Not_found;
  Hashtbl.replace t.tensors name x

let names t = List.rev t.order

let parameter_count t =
  Hashtbl.fold (fun _ x acc -> acc + Tensor.size x) t.tensors 0

let copy t =
  { tensors = Hashtbl.copy t.tensors; order = t.order }

module Frame = struct
  type store = t
  type t = { store : store; leaves : (string, Ad.t) Hashtbl.t; detached : bool }

  let make store = { store; leaves = Hashtbl.create 16; detached = false }
  let make_detached store = { store; leaves = Hashtbl.create 16; detached = true }

  let get f name =
    if f.detached then Ad.const (tensor f.store name)
    else
      match Hashtbl.find_opt f.leaves name with
      | Some leaf -> leaf
      | None ->
        let leaf = Ad.const (tensor f.store name) in
        Hashtbl.add f.leaves name leaf;
        leaf

  let detach f = make_detached f.store
  let get_detached f name = Ad.const (tensor f.store name)

  let params f =
    Hashtbl.fold (fun name leaf acc -> (name, leaf) :: acc) f.leaves []

  let grads f =
    List.map (fun (name, leaf) -> (name, Ad.grad leaf)) (params f)
end
