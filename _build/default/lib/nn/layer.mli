(** Neural-network building blocks over the AD engine.

    Layers separate {e registration} (writing initial tensors into a
    {!Store.t}, done once) from {e application} (pure functions over a
    {!Store.Frame.t}, done every step). Inputs may be a single example
    (rank 1) or a batch (rank 2, examples as rows). *)

type activation = Linear | Relu | Tanh | Sigmoid | Softplus

val apply_activation : activation -> Ad.t -> Ad.t

val dense_register :
  Store.t -> name:string -> in_dim:int -> out_dim:int -> key:Prng.key -> unit
(** Register weights [name ^ ".w"] ([in_dim] x [out_dim], Glorot-
    initialized) and bias [name ^ ".b"] (zeros). Idempotent. *)

val dense : Store.Frame.t -> name:string -> ?act:activation -> Ad.t -> Ad.t
(** Apply a registered dense layer: [act (x w + b)]. *)

val mlp_register :
  Store.t -> name:string -> dims:int list -> key:Prng.key -> unit
(** Register a chain of dense layers [name ^ ".0"], [name ^ ".1"], ...
    for consecutive dimension pairs in [dims]. *)

val mlp :
  Store.Frame.t ->
  name:string ->
  layers:int ->
  ?hidden_act:activation ->
  ?final_act:activation ->
  Ad.t ->
  Ad.t
(** Apply a registered MLP: [hidden_act] (default [Softplus]) between
    layers, [final_act] (default [Linear]) at the end. *)

val glorot : Prng.key -> in_dim:int -> out_dim:int -> Tensor.t
(** Glorot/Xavier-uniform initialization. *)
