let latent_dim = Vae.latent_dim

(* The estimator of Fig. 10 (top left), written directly against the AD
   engine: reparameterize by hand, accumulate the three log-density
   terms by hand. *)
let elbo_surrogate frame images key =
  let n = (Tensor.shape images).(0) in
  let x = Ad.const images in
  let mu, std = Vae.encode frame x in
  let eps = Ad.const (Prng.normal_tensor key [| n; latent_dim |]) in
  let z = Ad.O.(mu + (std * eps)) in
  let guide_logp = Dist.log_density_mv_normal_diag ~mean:mu ~std z in
  let prior_logp =
    Dist.log_density_mv_normal_diag
      ~mean:(Ad.const (Tensor.zeros [| n; latent_dim |]))
      ~std:(Ad.const (Tensor.ones [| n; latent_dim |]))
      z
  in
  let logits = Vae.decode frame z in
  let like_logp = Dist.log_density_bernoulli_logits ~logits x in
  Ad.scale (1. /. float_of_int n)
    Ad.O.(like_logp + prior_logp - guide_logp)

let grad_step_time store ~batch ~repeats key =
  let images, _ = Data.digit_batch key batch in
  let run i =
    let frame = Store.Frame.make store in
    let surrogate = elbo_surrogate frame images (Prng.fold_in key i) in
    Ad.backward surrogate;
    ignore (Store.Frame.grads frame)
  in
  run 0;
  let t0 = Unix.gettimeofday () in
  for i = 1 to repeats do
    run i
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int repeats

let agrees_with_automated store ~batch key =
  let images, _ = Data.digit_batch key batch in
  let samples = 400 in
  let hand =
    let total = ref 0. in
    for i = 0 to samples - 1 do
      let frame = Store.Frame.make store in
      let s = elbo_surrogate frame images (Prng.fold_in key i) in
      total := !total +. Tensor.to_scalar (Ad.value s)
    done;
    !total /. float_of_int samples
  in
  let automated =
    let frame = Store.Frame.make store in
    Adev.estimate ~samples (Vae.elbo_per_datum frame images) key
  in
  (hand, automated)
