lib/baseline/vae_hand.mli: Ad Prng Store Tensor
