lib/baseline/svi.mli: Ad Gen Prng
