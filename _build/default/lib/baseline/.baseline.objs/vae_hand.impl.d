lib/baseline/vae_hand.ml: Ad Adev Array Data Dist Prng Store Tensor Unix Vae
