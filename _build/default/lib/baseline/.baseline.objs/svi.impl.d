lib/baseline/svi.ml: Ad Baseline Dist Float Gen Hashtbl List Printf Prng Tensor Trace
