(** A monolithic, Pyro-style stochastic variational inference engine —
    the comparator system for Tables 2 and 3.

    This engine deliberately mirrors the design the paper argues
    against: instead of compiling the model and guide into ADEV programs
    and composing per-primitive estimators, it replays the guide like a
    trace poutine and bakes a {e fixed} menu of whole-objective gradient
    estimators into its ELBO implementation:

    - [Reinforce]: pathwise derivatives through reparameterizable sites,
      a single score-function term for everything else;
    - [Reinforce_baselines]: the same, with per-site running-mean
      control variates;
    - [Enum_discrete]: exhaustive enumeration of every finite-support
      site (one monolithic product over branches — exponential in the
      number of discrete sites, like Pyro's sequential enumeration).

    Everything outside that menu — measure-valued derivatives, per-site
    strategy mixing, importance-weighted objectives with enumeration,
    [marginal] / [normalize] guides — raises {!Unsupported}. Those
    raised exceptions are the X entries of Table 3. *)

exception Unsupported of string

type estimator = Reinforce | Reinforce_baselines | Enum_discrete

val estimator_name : estimator -> string

val elbo_surrogate :
  model:'a Gen.t -> guide:'b Gen.t -> estimator -> Prng.key -> Ad.t
(** A surrogate loss whose value is an ELBO estimate and whose gradient
    is the engine's gradient estimator. @raise Unsupported on guides
    using [marginal] / [normalize], on guides with [observe], and on
    non-reparameterizable continuous sites under [Enum_discrete]. *)

val iwelbo_surrogate :
  particles:int -> model:'a Gen.t -> guide:'b Gen.t -> estimator ->
  Prng.key -> Ad.t
(** IWELBO with the score-function estimator. Only [Reinforce] is
    supported (as in Pyro, where e.g. enumeration and baselines are not
    wired into the importance-weighted objective).
    @raise Unsupported otherwise. *)

val supports : objective:[ `Elbo | `Iwelbo ] -> estimator -> bool
(** The engine's static menu (the Table 3 "Pyro" column). *)
