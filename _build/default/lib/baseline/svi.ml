exception Unsupported of string

type estimator = Reinforce | Reinforce_baselines | Enum_discrete

let estimator_name = function
  | Reinforce -> "REINFORCE"
  | Reinforce_baselines -> "REINFORCE+BL"
  | Enum_discrete -> "ENUM"

(* Per-address baseline cells, owned by the engine (as Pyro attaches
   baselines to sites). *)
let baseline_cells : (string, Baseline.t) Hashtbl.t = Hashtbl.create 16

let cell_for address =
  match Hashtbl.find_opt baseline_cells address with
  | Some c -> c
  | None ->
    let c = Baseline.create () in
    Hashtbl.add baseline_cells address c;
    c

type site = {
  address : string;
  logq : Ad.t;  (* log density at the replayed value *)
  pathwise : bool;  (* sampled with a reparameterized sampler *)
}

(* Replay a guide like a trace poutine: reparameterized sampling where
   available, detached sampling otherwise; record per-site log
   densities. *)
let rec replay : type a. a Gen.t -> Prng.key -> a * Trace.t * site list =
 fun prog key ->
  match Gen.view prog with
  | Gen.View_return x -> (x, Trace.empty, [])
  | Gen.View_bind (m, f) ->
    let k1, k2 = Prng.split key in
    let x, u1, s1 = replay m k1 in
    let y, u2, s2 = replay (f x) k2 in
    (y, Trace.union_disjoint u1 u2, s1 @ s2)
  | Gen.View_sample (d, address) ->
    let x, pathwise =
      match d.Dist.reparam with
      | Some r -> (r key, true)
      | None -> (d.Dist.sample key, false)
    in
    ( x,
      Trace.singleton address (d.Dist.inject x),
      [ { address; logq = d.Dist.log_density x; pathwise } ] )
  | Gen.View_observe (_, _) ->
    raise (Unsupported "observe statements in the guide")
  | Gen.View_unsupported what ->
    raise (Unsupported (what ^ " (requires programmable densities)"))

(* The engine's own monolithic density accumulator for the model. *)
let rec model_log_density : type a. a Gen.t -> Trace.t -> Ad.t * a * Trace.t =
 fun prog u ->
  match Gen.view prog with
  | Gen.View_return x -> (Ad.scalar 0., x, u)
  | Gen.View_bind (m, f) ->
    let w1, x, u1 = model_log_density m u in
    let w2, y, u2 = model_log_density (f x) u1 in
    (Ad.add w1 w2, y, u2)
  | Gen.View_sample (d, address) -> begin
    match Trace.find_opt address u with
    | Some v -> begin
      match d.Dist.project v with
      | Some x -> (d.Dist.log_density x, x, Trace.remove address u)
      | None -> (Ad.scalar Float.neg_infinity, d.Dist.default, u)
    end
    | None -> (Ad.scalar Float.neg_infinity, d.Dist.default, u)
  end
  | Gen.View_observe (d, v) -> (d.Dist.log_density v, (), u)
  | Gen.View_unsupported what ->
    raise (Unsupported (what ^ " in the model"))

let model_logp model trace =
  let w, _, remainder = model_log_density model trace in
  if Trace.is_empty remainder then w else Ad.scalar Float.neg_infinity

let magic_box coeff lp = Ad.mul coeff (Ad.sub lp (Ad.stop_grad lp))

(* The classic monolithic surrogate: elbo + sum over score-function
   sites of (stop(elbo) - baseline) (logq - stop logq). *)
let reinforce_surrogate ~baselines ~model ~guide key =
  let k1, _ = Prng.split key in
  let _, trace, sites = replay guide k1 in
  let logq = Ad.add_list (List.map (fun s -> s.logq) sites) in
  let logp = model_logp model trace in
  let elbo = Ad.sub logp logq in
  let score_terms =
    List.filter_map
      (fun s ->
        if s.pathwise then None
        else begin
          let b =
            if baselines then begin
              let cell = cell_for s.address in
              let b = Baseline.value cell in
              Baseline.update cell (Tensor.to_scalar (Ad.value elbo));
              b
            end
            else 0.
          in
          let coeff = Ad.add_scalar (-.b) (Ad.stop_grad elbo) in
          Some (magic_box coeff s.logq)
        end)
      sites
  in
  Ad.add_list (elbo :: score_terms)

(* Exhaustive enumeration of finite-support sites. Each branch carries
   (value, trace so far, log enumeration weight, log density of the
   pathwise continuous sites). *)
let rec enum_branches : type a.
    a Gen.t -> Prng.key -> (a * Trace.t * Ad.t * Ad.t) list =
 fun prog key ->
  match Gen.view prog with
  | Gen.View_return x -> [ (x, Trace.empty, Ad.scalar 0., Ad.scalar 0.) ]
  | Gen.View_bind (m, f) ->
    let k1, k2 = Prng.split key in
    List.concat_map
      (fun (x, u1, w1, c1) ->
        List.map
          (fun (y, u2, w2, c2) ->
            (y, Trace.union_disjoint u1 u2, Ad.add w1 w2, Ad.add c1 c2))
          (enum_branches (f x) k2))
      (enum_branches m k1)
  | Gen.View_sample (d, address) -> begin
    match d.Dist.support with
    | Some support ->
      List.map
        (fun v ->
          ( v,
            Trace.singleton address (d.Dist.inject v),
            d.Dist.log_density v,
            Ad.scalar 0. ))
        support
    | None -> begin
      match d.Dist.reparam with
      | Some r ->
        let x = r key in
        [ (x, Trace.singleton address (d.Dist.inject x), Ad.scalar 0.,
           d.Dist.log_density x) ]
      | None ->
        raise
          (Unsupported
             (Printf.sprintf
                "site %S: non-enumerable, non-reparameterizable under \
                 Enum_discrete"
                address))
    end
  end
  | Gen.View_observe (_, _) ->
    raise (Unsupported "observe statements in the guide")
  | Gen.View_unsupported what -> raise (Unsupported what)

let enum_surrogate ~model ~guide key =
  let branches = enum_branches guide key in
  let terms =
    List.map
      (fun (_, trace, logw, logc) ->
        let logp = model_logp model trace in
        let weight = Ad.exp logw in
        Ad.mul weight Ad.O.(logp - logw - logc))
      branches
  in
  Ad.add_list terms

let elbo_surrogate ~model ~guide estimator key =
  match estimator with
  | Reinforce -> reinforce_surrogate ~baselines:false ~model ~guide key
  | Reinforce_baselines -> reinforce_surrogate ~baselines:true ~model ~guide key
  | Enum_discrete -> enum_surrogate ~model ~guide key

let iwelbo_surrogate ~particles ~model ~guide estimator key =
  (match estimator with
  | Reinforce -> ()
  | Reinforce_baselines ->
    raise (Unsupported "baselines are not wired into the IWELBO objective")
  | Enum_discrete ->
    raise (Unsupported "enumeration is not wired into the IWELBO objective"));
  let particle i =
    let k = Prng.fold_in key i in
    let _, trace, sites = replay guide k in
    let logq = Ad.add_list (List.map (fun s -> s.logq) sites) in
    let logp = model_logp model trace in
    (Ad.sub logp logq, sites)
  in
  let runs = List.init particles particle in
  let logws = List.map fst runs in
  let iwelbo =
    Ad.sub
      (Ad.logsumexp (Ad.stack0 logws))
      (Ad.scalar (Float.log (float_of_int particles)))
  in
  let score_terms =
    List.concat_map
      (fun (_, sites) ->
        List.filter_map
          (fun s ->
            if s.pathwise then None
            else Some (magic_box (Ad.stop_grad iwelbo) s.logq))
          sites)
      runs
  in
  Ad.add_list (iwelbo :: score_terms)

let supports ~objective estimator =
  match (objective, estimator) with
  | `Elbo, (Reinforce | Reinforce_baselines | Enum_discrete) -> true
  | `Iwelbo, Reinforce -> true
  | `Iwelbo, (Reinforce_baselines | Enum_discrete) -> false
