(** Hand-coded VAE ELBO gradient estimator — the Table 1 / Fig. 10
    comparator.

    This is the estimator a practitioner would write directly against
    the AD engine, with no generative language, no traces, and no ADEV:
    sample the noise, reparameterize, and write out the three log-density
    terms by hand. It shares [Vae.register]'s parameters (and its
    encoder/decoder networks), so any runtime difference against
    [Vae.grad_step_time] measures exactly the overhead of the automation
    layers. *)

val elbo_surrogate : Store.Frame.t -> Tensor.t -> Prng.key -> Ad.t
(** Per-datum ELBO of a batch, reparameterized by hand. *)

val grad_step_time :
  Store.t -> batch:int -> repeats:int -> Prng.key -> float
(** Mean seconds per hand-coded gradient estimate (forward + backward)
    at the given batch size — the Table 1 "Hand coded" column. *)

val agrees_with_automated :
  Store.t -> batch:int -> Prng.key -> float * float
(** (hand-coded estimate, automated estimate) of the ELBO under the
    {e same} noise key — used by the test suite to show the two
    estimators compute the same value. *)
