(* Exact-oracle tests: on finitely-supported programs, [Gen.enumerate]
   computes the full measure over traces in closed form, which lets us
   check sim frequencies, density evaluation, normalize's posterior,
   marginal's marginals, and trained ENUM guides against exact answers
   rather than statistical tolerances alone. *)

let k0 = Prng.key 6060

let check_close name ~tol expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %g, got %g (tol %g)" name expected actual tol

let primal a = Tensor.to_scalar (Ad.value a)

let run_det m key =
  let result = ref None in
  let (_ : Ad.t) =
    Adev.run m key (fun x ->
        result := Some x;
        Ad.scalar 0.)
  in
  Option.get !result

(* A small discrete "burglary" network: burglary ~ flip 0.1;
   alarm | b ~ flip (0.9 / 0.05); observe call given alarm. *)
let burglary =
  let open Gen.Syntax in
  let* b = Gen.sample (Dist.flip_reinforce (Ad.scalar 0.1)) "burglary" in
  let* a =
    Gen.sample (Dist.flip_reinforce (Ad.scalar (if b then 0.9 else 0.05))) "alarm"
  in
  let* () =
    Gen.observe (Dist.flip_reinforce (Ad.scalar (if a then 0.8 else 0.01))) true
  in
  Gen.return b

(* Closed forms. *)
let joint b a =
  (if b then 0.1 else 0.9)
  *. (if a then if b then 0.9 else 0.05 else if b then 0.1 else 0.95)
  *. (if a then 0.8 else 0.01)

let evidence =
  joint true true +. joint true false +. joint false true +. joint false false

let posterior_burglary = (joint true true +. joint true false) /. evidence

let test_enumerate_weights () =
  let traces = Gen.enumerate burglary in
  Alcotest.(check int) "four traces" 4 (List.length traces);
  List.iter
    (fun (b, trace, logw) ->
      let a = Trace.get_bool "alarm" trace in
      check_close
        (Printf.sprintf "weight b=%b a=%b" b a)
        ~tol:1e-12
        (Float.log (joint b a))
        logw;
      Alcotest.(check bool) "return value matches trace" true
        (Trace.get_bool "burglary" trace = b))
    traces

let test_exact_log_marginal () =
  check_close "evidence" ~tol:1e-12 (Float.log evidence)
    (Gen.exact_log_marginal burglary)

let test_density_matches_enumerate () =
  List.iter
    (fun (_, trace, logw) ->
      let d = run_det (Gen.log_density burglary trace) k0 in
      check_close "density = enumerate weight" ~tol:1e-12 logw (primal d))
    (Gen.enumerate burglary)

let test_sim_frequencies_match_enumerate () =
  (* sim samples the prior part; observe reweights only the measure. The
     trace frequency of (b, a) under sim is prior(b) prior(a | b). *)
  let n = 40000 in
  let count_bb = ref 0 in
  Array.iter
    (fun k ->
      let _, trace, _ = Gen.sample_prior burglary k in
      if Trace.get_bool "burglary" trace && Trace.get_bool "alarm" trace then
        incr count_bb)
    (Prng.split_many k0 n);
  check_close "prior freq of (T,T)" ~tol:0.005 (0.1 *. 0.9)
    (float_of_int !count_bb /. float_of_int n)

let test_normalize_matches_exact_posterior () =
  (* SIR with enough particles approaches the exact posterior over
     burglary; with the prior proposal and 64 particles the bias is
     small. *)
  let proposal =
    let open Gen.Syntax in
    let* b = Gen.sample (Dist.flip_reinforce (Ad.scalar 0.1)) "burglary" in
    let* _ =
      Gen.sample
        (Dist.flip_reinforce (Ad.scalar (if b then 0.9 else 0.05)))
        "alarm"
    in
    Gen.return ()
  in
  let sir =
    Gen.normalize burglary (Gen.importance_prior ~particles:64 (Gen.Packed proposal))
  in
  let n = 3000 in
  let hits = ref 0 in
  Array.iter
    (fun k ->
      let b, _, _ = Gen.sample_prior sir k in
      if b then incr hits)
    (Prng.split_many k0 n);
  check_close "SIR posterior P(burglary | call)" ~tol:0.03
    posterior_burglary
    (float_of_int !hits /. float_of_int n)

let test_marginal_matches_exact_marginal () =
  (* Marginalize the alarm out of the prior-only network; the exact
     marginal of burglary is its prior. Density estimates at the kept
     trace must average (in probability space) to the exact marginal. *)
  let prior_net =
    let open Gen.Syntax in
    let* b = Gen.sample (Dist.flip_reinforce (Ad.scalar 0.1)) "burglary" in
    let* _ =
      Gen.sample
        (Dist.flip_reinforce (Ad.scalar (if b then 0.9 else 0.05)))
        "alarm"
    in
    Gen.return ()
  in
  let reverse kept =
    let b = Trace.get_bool "burglary" kept in
    Gen.Packed
      (Gen.sample
         (Dist.flip_reinforce (Ad.scalar (if b then 0.9 else 0.05)))
         "alarm")
  in
  (* The reverse kernel here IS the exact conditional, so a single
     particle gives the exact marginal. *)
  let marg =
    Gen.marginal ~keep:[ "burglary" ] prior_net
      (Gen.importance ~particles:1 reverse)
  in
  let trace = Trace.of_list [ ("burglary", Value.Bool true) ] in
  let d = run_det (Gen.log_density marg trace) k0 in
  check_close "exact discrete marginal" ~tol:1e-12 (Float.log 0.1) (primal d)

let test_enum_guide_converges_to_exact_posterior () =
  (* Train a flip guide with ENUM gradients: the ELBO over a discrete
     family is exactly computable, so ADAM should drive the guide's
     probability to the true posterior quickly. *)
  (* The fully-learnable discrete family (q(b), q(a | b = T),
     q(a | b = F)) contains the exact posterior, so the ELBO optimum is
     the posterior itself. *)
  let store = Store.create () in
  List.iter
    (fun name -> Store.ensure store name (fun () -> Tensor.scalar 0.))
    [ "qb"; "qa_t"; "qa_f" ];
  let guide frame =
    let p name = Ad.sigmoid (Store.Frame.get frame name) in
    let open Gen.Syntax in
    let* b = Gen.sample (Dist.flip_enum (p "qb")) "burglary" in
    let* _ = Gen.sample (Dist.flip_enum (p (if b then "qa_t" else "qa_f"))) "alarm" in
    Gen.return ()
  in
  let optim = Optim.adam ~lr:0.1 () in
  let (_ : Train.report list) =
    Train.fit ~store ~optim ~steps:400
      ~objective:(fun frame _ ->
        Objectives.elbo ~model:burglary ~guide:(guide frame))
      k0
  in
  let learned =
    1. /. (1. +. Float.exp (-.Tensor.to_scalar (Store.tensor store "qb")))
  in
  check_close "guide matches exact posterior" ~tol:0.02 posterior_burglary
    learned

let test_enum_elbo_is_exact_evidence_at_posterior () =
  (* With the guide set exactly to the posterior, the ELBO equals the
     log evidence, and because every site is enumerated, a SINGLE
     estimate is exact (zero variance). *)
  let guide =
    let open Gen.Syntax in
    let* b =
      Gen.sample (Dist.flip_enum (Ad.scalar posterior_burglary)) "burglary"
    in
    (* exact conditional posterior of the alarm given burglary *)
    let pa =
      if b then joint true true /. (joint true true +. joint true false)
      else joint false true /. (joint false true +. joint false false)
    in
    let* _ = Gen.sample (Dist.flip_enum (Ad.scalar pa)) "alarm" in
    Gen.return ()
  in
  let one_estimate =
    primal (Adev.expectation (Objectives.elbo ~model:burglary ~guide) k0)
  in
  check_close "single ENUM ELBO estimate = log Z" ~tol:1e-9
    (Float.log evidence) one_estimate

let test_enumerate_rejects_continuous () =
  let prog = Gen.sample (Dist.normal_reparam (Ad.scalar 0.) (Ad.scalar 1.)) "x" in
  Alcotest.(check bool) "continuous rejected" true
    (try
       ignore (Gen.enumerate prog);
       false
     with Invalid_argument _ -> true)

(* Property: on random two-flip programs, exact_log_marginal agrees with
   direct summation of the four branch weights. *)
let prop_marginal_consistent =
  QCheck.Test.make ~name:"exact marginal consistent" ~count:100
    QCheck.(pair (float_range 0.05 0.95) (float_range 0.05 0.95))
    (fun (p1, p2) ->
      let open Gen.Syntax in
      let prog =
        let* a = Gen.sample (Dist.flip_reinforce (Ad.scalar p1)) "a" in
        let* () =
          Gen.observe
            (Dist.flip_reinforce (Ad.scalar (if a then p2 else 1. -. p2)))
            true
        in
        Gen.return a
      in
      let direct = (p1 *. p2) +. ((1. -. p1) *. (1. -. p2)) in
      Float.abs (Gen.exact_log_marginal prog -. Float.log direct) < 1e-9)

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_marginal_consistent ]

let suites =
  [ ( "gen-exact",
      [ Alcotest.test_case "enumerate weights" `Quick test_enumerate_weights;
        Alcotest.test_case "exact log marginal" `Quick test_exact_log_marginal;
        Alcotest.test_case "density = enumerate" `Quick
          test_density_matches_enumerate;
        Alcotest.test_case "sim frequencies" `Slow
          test_sim_frequencies_match_enumerate;
        Alcotest.test_case "normalize = exact posterior" `Slow
          test_normalize_matches_exact_posterior;
        Alcotest.test_case "marginal = exact marginal" `Quick
          test_marginal_matches_exact_marginal;
        Alcotest.test_case "enum guide converges exactly" `Slow
          test_enum_guide_converges_to_exact_posterior;
        Alcotest.test_case "enum elbo = log Z at posterior" `Quick
          test_enum_elbo_is_exact_evidence_at_posterior;
        Alcotest.test_case "enumerate rejects continuous" `Quick
          test_enumerate_rejects_continuous ]
      @ qcheck_cases ) ]
