(* Tests for the synthetic datasets. *)

let k0 = Prng.key 404

let test_glyphs_distinct () =
  let glyphs = List.init 10 Data.digit_glyph in
  List.iteri
    (fun i gi ->
      List.iteri
        (fun j gj ->
          if i < j && Tensor.equal gi gj then
            Alcotest.failf "digits %d and %d render identically" i j)
        glyphs)
    glyphs;
  List.iter
    (fun g ->
      Alcotest.(check (array int)) "12x12"
        [| Data.sprite_side; Data.sprite_side |]
        (Tensor.shape g);
      Alcotest.(check bool) "binary" true
        (Array.for_all (fun x -> x = 0. || x = 1.) (Tensor.to_array g)))
    glyphs

let test_sprite_jitter () =
  let a = Data.sprite k0 3 in
  let b = Data.sprite (Prng.fold_in k0 1) 3 in
  Alcotest.(check bool) "jitter varies" true (not (Tensor.equal a b));
  Alcotest.(check bool) "deterministic" true
    (Tensor.equal (Data.sprite k0 3) (Data.sprite k0 3))

let test_digit_batch () =
  let images, labels = Data.digit_batch k0 20 in
  Alcotest.(check (array int)) "shape" [| 20; Data.sprite_dim |]
    (Tensor.shape images);
  Alcotest.(check bool) "labels in range" true
    (Array.for_all (fun l -> l >= 0 && l < 10) labels)

let test_position_offsets_disjoint () =
  let cells =
    List.init Data.num_positions (fun p ->
        let r0, c0 = Data.position_offset p in
        Alcotest.(check bool) "fits on canvas" true
          (r0 + Data.patch_side <= Data.canvas_side
          && c0 + Data.patch_side <= Data.canvas_side);
        (r0, c0))
  in
  List.iteri
    (fun i (r1, c1) ->
      List.iteri
        (fun j (r2, c2) ->
          if i < j then
            Alcotest.(check bool) "cells disjoint" true
              (Stdlib.abs (r1 - r2) >= Data.patch_side
              || Stdlib.abs (c1 - c2) >= Data.patch_side))
        cells)
    cells

let test_render_scene_mass () =
  let empty = Data.render_scene [] in
  Alcotest.(check (float 0.)) "empty canvas" 0. (Tensor.sum empty);
  let one = Data.render_scene [ (8, 0) ] in
  let two = Data.render_scene [ (8, 0); (8, 3) ] in
  Alcotest.(check bool) "mass grows with objects" true
    (Tensor.sum two > Tensor.sum one && Tensor.sum one > 4.);
  Alcotest.(check bool) "in [0,1]" true
    (Tensor.max_elt two <= 1. && Tensor.min_elt two >= 0.)

let test_air_batch_counts () =
  let _, counts = Data.air_batch k0 300 in
  Array.iter
    (fun c ->
      if c < 0 || c > Data.max_objects then Alcotest.failf "count %d" c)
    counts;
  (* Counts are roughly uniform. *)
  let freq c =
    float_of_int (Array.length (Array.of_list (List.filter (( = ) c) (Array.to_list counts))))
    /. 300.
  in
  List.iter
    (fun c ->
      let f = freq c in
      if f < 0.2 || f > 0.5 then
        Alcotest.failf "count %d frequency %.2f not near uniform" c f)
    [ 0; 1; 2 ]

let test_quadrants () =
  let img = Data.digit_glyph 5 in
  let q = Data.quadrant img 2 in
  Alcotest.(check (array int)) "6x6" [| 6; 6 |] (Tensor.shape q);
  let rest = Data.without_quadrant img 2 in
  Alcotest.(check int) "complement size" 108 (Tensor.size rest);
  (* Pixel mass is partitioned. *)
  Alcotest.(check (float 1e-9)) "partition" (Tensor.sum img)
    (Tensor.sum q +. Tensor.sum rest)

let test_regression_data () =
  let data = Data.regression_data k0 500 in
  let a, ba, br, bar = Data.regression_truth in
  (* Least-squares on noiseless features should sit near the truth:
     check the subgroup means differ in the documented direction. *)
  let mean_gdp pred =
    let xs = List.filter pred (Array.to_list data) in
    List.fold_left (fun acc d -> acc +. d.Data.log_gdp) 0. xs
    /. float_of_int (List.length xs)
  in
  let africa = mean_gdp (fun d -> d.Data.in_africa) in
  let other = mean_gdp (fun d -> not d.Data.in_africa) in
  Alcotest.(check bool) "bA < 0 visible in data" true (africa < other);
  ignore (a, ba, br, bar);
  Array.iter
    (fun d ->
      if d.Data.ruggedness < 0. || d.Data.ruggedness > 6. then
        Alcotest.failf "ruggedness out of range")
    data

let test_ascii () =
  let s = Data.ascii (Data.digit_glyph 1) in
  Alcotest.(check bool) "contains strokes" true (String.contains s '#');
  Alcotest.(check int) "12 lines" 12
    (List.length (String.split_on_char '\n' (String.trim s)))

let suites =
  [ ( "data",
      [ Alcotest.test_case "glyphs distinct" `Quick test_glyphs_distinct;
        Alcotest.test_case "sprite jitter" `Quick test_sprite_jitter;
        Alcotest.test_case "digit batch" `Quick test_digit_batch;
        Alcotest.test_case "positions disjoint" `Quick
          test_position_offsets_disjoint;
        Alcotest.test_case "render scene" `Quick test_render_scene_mass;
        Alcotest.test_case "air batch counts" `Quick test_air_batch_counts;
        Alcotest.test_case "quadrants" `Quick test_quadrants;
        Alcotest.test_case "regression data" `Quick test_regression_data;
        Alcotest.test_case "ascii" `Quick test_ascii ] ) ]
