(* Property tests for the trace algebra: the laws the sim/density
   transformations rely on (disjoint union, restrict/without
   partitioning, subset/diff coherence). *)

let value_gen =
  QCheck.Gen.(
    oneof
      [ map (fun f -> Value.real f) (float_range (-5.) 5.);
        map (fun b -> Value.Bool b) bool;
        map (fun i -> Value.Int i) small_int ])

let addr_gen = QCheck.Gen.(map (Printf.sprintf "a%d") (int_range 0 12))

let trace_gen =
  QCheck.Gen.(
    list_size (int_range 0 8) (pair addr_gen value_gen) >|= fun kvs ->
    (* Deduplicate addresses (add raises on duplicates by design). *)
    List.fold_left
      (fun acc (k, v) -> if Trace.mem k acc then acc else Trace.add k v acc)
      Trace.empty kvs)

let arb_trace = QCheck.make ~print:Trace.to_string trace_gen

let prop_union_disjoint_size =
  QCheck.Test.make ~name:"disjoint union adds sizes" ~count:200
    (QCheck.pair arb_trace arb_trace) (fun (a, b) ->
      let b' = Trace.diff b a in
      Trace.size (Trace.union_disjoint a b') = Trace.size a + Trace.size b')

let prop_union_overlap_raises =
  QCheck.Test.make ~name:"overlapping union raises" ~count:200 arb_trace
    (fun t ->
      if Trace.is_empty t then true
      else
        try
          ignore (Trace.union_disjoint t t);
          false
        with Trace.Duplicate_address _ -> true)

let prop_restrict_without_partition =
  QCheck.Test.make ~name:"restrict + without partition the trace" ~count:200
    (QCheck.pair arb_trace (QCheck.make QCheck.Gen.(list_size (int_range 0 5) addr_gen)))
    (fun (t, names) ->
      let kept = Trace.restrict names t in
      let rest = Trace.without names t in
      Trace.size kept + Trace.size rest = Trace.size t
      && Trace.equal_primal (Trace.union_disjoint kept rest) t)

let prop_diff_subset =
  QCheck.Test.make ~name:"diff produces disjoint subsets" ~count:200
    (QCheck.pair arb_trace arb_trace) (fun (a, b) ->
      let d = Trace.diff a b in
      Trace.subset_keys d a
      && List.for_all (fun k -> not (Trace.mem k b)) (Trace.keys d))

let prop_add_remove_roundtrip =
  QCheck.Test.make ~name:"add then remove is identity" ~count:200 arb_trace
    (fun t ->
      let fresh = "zz_fresh" in
      if Trace.mem fresh t then true
      else
        let t' = Trace.remove fresh (Trace.add fresh (Value.real 1.) t) in
        Trace.equal_primal t t')

let prop_of_list_bindings_roundtrip =
  QCheck.Test.make ~name:"of_list / bindings roundtrip" ~count:200 arb_trace
    (fun t -> Trace.equal_primal (Trace.of_list (Trace.bindings t)) t)

let test_typed_accessors () =
  let t =
    Trace.of_list
      [ ("f", Value.real 2.5); ("b", Value.Bool true); ("i", Value.Int 7) ]
  in
  Alcotest.(check (float 0.)) "float" 2.5 (Trace.get_float "f" t);
  Alcotest.(check bool) "bool" true (Trace.get_bool "b" t);
  Alcotest.(check int) "int" 7 (Trace.get_int "i" t);
  Alcotest.(check bool) "wrong type raises" true
    (try
       ignore (Trace.get_bool "f" t);
       false
     with Value.Type_error _ -> true);
  Alcotest.(check bool) "missing raises" true
    (try
       ignore (Trace.get "nope" t);
       false
     with Not_found -> true)

let test_pp () =
  let t = Trace.of_list [ ("x", Value.real 1.) ] in
  Alcotest.(check bool) "printable" true
    (String.length (Trace.to_string t) > 0)

let suites =
  [ ( "trace",
      [ Alcotest.test_case "typed accessors" `Quick test_typed_accessors;
        Alcotest.test_case "pp" `Quick test_pp ]
      @ List.map QCheck_alcotest.to_alcotest
          [ prop_union_disjoint_size; prop_union_overlap_raises;
            prop_restrict_without_partition; prop_diff_subset;
            prop_add_remove_roundtrip; prop_of_list_bindings_roundtrip ] ) ]
