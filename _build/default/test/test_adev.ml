(* Unbiasedness tests for the ADEV gradient estimators (Theorem 5.2).

   For objectives with closed-form gradients we check that (a) exact
   strategies (ENUM; MVD for flip with a deterministic continuation)
   produce the analytic gradient on a single sample, and (b) stochastic
   strategies (REINFORCE, MVD for the normal, REPARAM) produce it on
   average, within law-of-large-numbers tolerances. We also cross-check
   the reverse-mode surrogate construction against the independent
   forward-mode transformation of Fig. 6. *)

let k0 = Prng.key 77

let check_close name ~tol expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %g, got %g (tol %g)" name expected actual tol

(* Average gradient of [objective theta] over [n] independent runs. *)
let mean_grad ?(n = 20000) build =
  let total_v = ref 0. and total_g = ref 0. in
  Array.iter
    (fun key ->
      let theta, obj = build () in
      let v, grads = Adev.grad ~params:[ ("theta", theta) ] obj key in
      total_v := !total_v +. v;
      total_g := !total_g +. Tensor.to_scalar (List.assoc "theta" grads))
    (Prng.split_many k0 n);
  (!total_v /. float_of_int n, !total_g /. float_of_int n)

let sq x = Ad.mul x x

(* E_{x ~ N(theta, 1)}[x^2] = theta^2 + 1, gradient 2 theta. *)

let test_reparam_normal () =
  let open Adev.Syntax in
  let v, g =
    mean_grad ~n:4000 (fun () ->
        let theta = Ad.scalar 1.3 in
        ( theta,
          let* x = Adev.sample (Dist.normal_reparam theta (Ad.scalar 1.)) in
          Adev.return (sq x) ))
  in
  check_close "reparam value" ~tol:0.15 (1. +. (1.3 ** 2.)) v;
  check_close "reparam grad" ~tol:0.15 2.6 g

let test_reinforce_normal () =
  let open Adev.Syntax in
  let v, g =
    mean_grad ~n:40000 (fun () ->
        let theta = Ad.scalar 1.3 in
        ( theta,
          let* x = Adev.sample (Dist.normal_reinforce theta (Ad.scalar 1.)) in
          Adev.return (sq x) ))
  in
  check_close "reinforce value" ~tol:0.1 (1. +. (1.3 ** 2.)) v;
  check_close "reinforce grad" ~tol:0.25 2.6 g

let test_mvd_normal_mean () =
  let open Adev.Syntax in
  let _, g =
    mean_grad ~n:8000 (fun () ->
        let theta = Ad.scalar 1.3 in
        ( theta,
          let* x = Adev.sample (Dist.normal_mvd theta (Ad.scalar 1.)) in
          Adev.return (sq x) ))
  in
  check_close "mvd mean grad" ~tol:0.15 2.6 g

(* E_{x ~ N(0, theta)}[x^2] = theta^2, gradient 2 theta. *)
let test_mvd_normal_scale () =
  let open Adev.Syntax in
  let _, g =
    mean_grad ~n:20000 (fun () ->
        let theta = Ad.scalar 0.9 in
        ( theta,
          let* x = Adev.sample (Dist.normal_mvd (Ad.scalar 0.) theta) in
          Adev.return (sq x) ))
  in
  check_close "mvd scale grad" ~tol:0.15 1.8 g

let test_reparam_normal_scale () =
  let open Adev.Syntax in
  let _, g =
    mean_grad ~n:4000 (fun () ->
        let theta = Ad.scalar 0.9 in
        ( theta,
          let* x = Adev.sample (Dist.normal_reparam (Ad.scalar 0.) theta) in
          Adev.return (sq x) ))
  in
  check_close "reparam scale grad" ~tol:0.1 1.8 g

(* E_{b ~ flip(theta)}[if b then 3 else 1] = 1 + 2 theta; gradient 2. *)

let branchy theta sample_flip =
  let open Adev.Syntax in
  ( theta,
    let* b = sample_flip theta in
    Adev.return (if b then Ad.scalar 3. else Ad.scalar 1.) )

let test_flip_enum_exact () =
  (* ENUM is exact: a single run yields the analytic value and gradient. *)
  let theta = Ad.scalar 0.3 in
  let _, obj = branchy theta (fun t -> Adev.sample (Dist.flip_enum t)) in
  let v, grads = Adev.grad ~params:[ ("theta", theta) ] obj k0 in
  check_close "enum value" ~tol:1e-9 1.6 v;
  check_close "enum grad" ~tol:1e-9 2.
    (Tensor.to_scalar (List.assoc "theta" grads))

let test_flip_mvd_exact_for_deterministic_continuation () =
  (* With a deterministic continuation the flip MVD coupling is also
     exact on every sample. *)
  let theta = Ad.scalar 0.3 in
  let _, obj = branchy theta (fun t -> Adev.sample (Dist.flip_mvd t)) in
  let _, grads = Adev.grad ~params:[ ("theta", theta) ] obj k0 in
  check_close "flip mvd grad" ~tol:1e-9 2.
    (Tensor.to_scalar (List.assoc "theta" grads))

let test_flip_reinforce () =
  let _, g =
    mean_grad ~n:40000 (fun () ->
        branchy (Ad.scalar 0.3) (fun t -> Adev.sample (Dist.flip_reinforce t)))
  in
  check_close "flip reinforce grad" ~tol:0.1 2. g

let test_flip_reinforce_baseline () =
  let cell = Baseline.create () in
  let _, g =
    mean_grad ~n:40000 (fun () ->
        branchy (Ad.scalar 0.3) (fun t ->
            Adev.sample (Dist.flip_reinforce_bl cell t)))
  in
  check_close "flip reinforce+bl grad" ~tol:0.1 2. g

let test_baseline_reduces_variance () =
  (* Sample variance of the per-run gradient, with and without the
     baseline, on the same objective. *)
  let grad_samples build n =
    Array.map
      (fun key ->
        let theta, obj = build () in
        let _, grads = Adev.grad ~params:[ ("theta", theta) ] obj key in
        Tensor.to_scalar (List.assoc "theta" grads))
      (Prng.split_many (Prng.key 9) n)
  in
  let variance xs =
    let n = float_of_int (Array.length xs) in
    let m = Array.fold_left ( +. ) 0. xs /. n in
    Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs /. n
  in
  let plain =
    grad_samples
      (fun () ->
        branchy (Ad.scalar 0.3) (fun t -> Adev.sample (Dist.flip_reinforce t)))
      4000
  in
  let cell = Baseline.create () in
  (* Warm the baseline before measuring. *)
  let with_bl =
    grad_samples
      (fun () ->
        branchy (Ad.scalar 0.3) (fun t ->
            Adev.sample (Dist.flip_reinforce_bl cell t)))
      4000
  in
  Alcotest.(check bool)
    (Printf.sprintf "baseline variance %.3f < plain %.3f" (variance with_bl)
       (variance plain))
    true
    (variance with_bl < variance plain)

let test_categorical_enum_exact () =
  (* E over a 3-way choice of [0; 10; 20] indexed values. *)
  let theta = Ad.scalar 0.2 in
  let open Adev.Syntax in
  let probs =
    (* probs = [theta; 2 theta; 1 - 3 theta] *)
    Ad.stack0
      [ theta; Ad.scale 2. theta;
        Ad.sub (Ad.scalar 1.) (Ad.scale 3. theta) ]
  in
  let obj =
    let* i = Adev.sample (Dist.categorical_enum probs) in
    Adev.return (Ad.scalar (float_of_int (10 * i)))
  in
  let v, grads = Adev.grad ~params:[ ("theta", theta) ] obj k0 in
  (* E = 10*2theta + 20*(1-3theta) = 20 - 40 theta; dE/dtheta = -40. *)
  check_close "cat enum value" ~tol:1e-9 12. v;
  check_close "cat enum grad" ~tol:1e-9 (-40.)
    (Tensor.to_scalar (List.assoc "theta" grads))

let test_score () =
  (* E (do { score (2 theta); return 3 }) = 6 theta; gradient 6. *)
  let theta = Ad.scalar 0.7 in
  let open Adev.Syntax in
  let obj =
    let* () = Adev.score (Ad.scale 2. theta) in
    Adev.return (Ad.scalar 3.)
  in
  let v, grads = Adev.grad ~params:[ ("theta", theta) ] obj k0 in
  check_close "score value" ~tol:1e-9 4.2 v;
  check_close "score grad" ~tol:1e-9 6.
    (Tensor.to_scalar (List.assoc "theta" grads))

let test_score_with_reinforce_site () =
  (* E_{b ~ flip p}[score (if b then 2 else 1); return 1]
     = 2p + (1-p) = 1 + p; gradient 1 — exercises the interaction of the
     score weight with the score-function term. *)
  let _, g =
    mean_grad ~n:40000 (fun () ->
        let theta = Ad.scalar 0.4 in
        let open Adev.Syntax in
        ( theta,
          let* b = Adev.sample (Dist.flip_reinforce theta) in
          let* () = Adev.score (Ad.scalar (if b then 2. else 1.)) in
          Adev.return (Ad.scalar 1.) ))
  in
  check_close "score+reinforce grad" ~tol:0.1 1. g

let test_compound_mixed_strategies () =
  (* Two interacting sites with different strategies:
     E_{b ~ flip p, x ~ N(mu(b), 1)}[x^2] where mu(true) = theta,
     mu(false) = 0.  E = p (theta^2 + 1) + (1 - p) * 1;
     dE/dtheta = 2 p theta. *)
  let p = 0.3 and th = 1.1 in
  let open Adev.Syntax in
  let _, g =
    mean_grad ~n:8000 (fun () ->
        let theta = Ad.scalar th in
        ( theta,
          let* b = Adev.sample (Dist.flip_enum (Ad.scalar p)) in
          let mu = if b then theta else Ad.scalar 0. in
          let* x = Adev.sample (Dist.normal_reparam mu (Ad.scalar 1.)) in
          Adev.return (sq x) ))
  in
  check_close "mixed strategies grad" ~tol:0.1 (2. *. p *. th) g

let test_expectation_mean_unbiased () =
  let open Adev.Syntax in
  let theta = Ad.scalar 1.3 in
  let obj =
    let* x = Adev.sample (Dist.normal_reparam theta (Ad.scalar 1.)) in
    Adev.return (sq x)
  in
  let est = Adev.estimate ~samples:4000 obj k0 in
  check_close "batched estimate" ~tol:0.15 (1. +. (1.3 ** 2.)) est

(* Cross-validation against the forward-mode ADEV of Fig. 6. *)

let test_forward_reverse_agree_reinforce () =
  (* Objective: E_{x ~ N(theta, 1)}[sin x]; compare the two modes'
     estimates of d/dtheta (they are different unbiased estimators of the
     same derivative). *)
  let theta = 0.6 in
  let forward =
    Forward.grad_estimate ~samples:60000
      (fun th ->
        let open Forward in
        let* x = normal_reinforce th.(0) (constant 1.) in
        return (sin_d x))
      [| theta |] 0 (Prng.key 3)
  in
  let reverse =
    let n = 60000 in
    let total = ref 0. in
    Array.iter
      (fun key ->
        let th = Ad.scalar theta in
        let open Adev.Syntax in
        let obj =
          let* x = Adev.sample (Dist.normal_reinforce th (Ad.scalar 1.)) in
          (* sin is not an Ad primitive; the sample is rigid, so a custom
             node on the primal is legitimate here. *)
          Adev.return
            (Ad.custom
               ~value:(Tensor.scalar (Float.sin (Tensor.to_scalar (Ad.value x))))
               ~parents:[])
        in
        let _, grads = Adev.grad ~params:[ ("theta", th) ] obj key in
        total := !total +. Tensor.to_scalar (List.assoc "theta" grads))
      (Prng.split_many (Prng.key 4) n);
    !total /. float_of_int n
  in
  (* Closed form: d/dtheta E[sin x] = cos(theta) e^{-1/2}. *)
  let exact = Float.cos theta *. Float.exp (-0.5) in
  check_close "forward vs exact" ~tol:0.06 exact forward;
  check_close "reverse vs exact" ~tol:0.06 exact reverse;
  check_close "forward vs reverse" ~tol:0.1 forward reverse

let test_forward_flip_enum_exact () =
  let g =
    Forward.grad_estimate ~samples:1
      (fun th ->
        let open Forward in
        let* b = flip_enum th.(0) in
        return (constant (if b then 3. else 1.)))
      [| 0.3 |] 0 (Prng.key 5)
  in
  check_close "forward enum grad" ~tol:1e-9 2. g

let test_forward_flip_mvd () =
  let g =
    Forward.grad_estimate ~samples:1
      (fun th ->
        let open Forward in
        let* b = flip_mvd th.(0) in
        return (constant (if b then 3. else 1.)))
      [| 0.3 |] 0 (Prng.key 5)
  in
  check_close "forward flip mvd grad" ~tol:1e-9 2. g

let test_forward_normal_mvd () =
  (* d/dtheta E_{x ~ N(theta, 1)}[x^2] = 2 theta. *)
  let g =
    Forward.grad_estimate ~samples:20000
      (fun th ->
        let open Forward in
        let* x = normal_mvd th.(0) (constant 1.) in
        return (mul x x))
      [| 1.3 |] 0 (Prng.key 6)
  in
  check_close "forward normal mvd" ~tol:0.15 2.6 g

let test_forward_reparam () =
  let g =
    Forward.grad_estimate ~samples:4000
      (fun th ->
        let open Forward in
        let* x = normal_reparam th.(0) (constant 1.) in
        return (mul x x))
      [| 1.3 |] 0 (Prng.key 7)
  in
  check_close "forward reparam" ~tol:0.15 2.6 g

let test_forward_score () =
  let g =
    Forward.grad_estimate ~samples:1
      (fun th ->
        let open Forward in
        let* () = score (mul (constant 2.) th.(0)) in
        return (constant 3.))
      [| 0.7 |] 0 (Prng.key 8)
  in
  check_close "forward score" ~tol:1e-9 6. g

(* Property: ENUM on flip is exact for random probabilities and branch
   values — gradient equals (f true - f false) on every single run. *)
let prop_enum_exact =
  QCheck.Test.make ~name:"flip ENUM gradient exact" ~count:50
    QCheck.(triple (float_range 0.05 0.95) (float_range (-3.) 3.)
              (float_range (-3.) 3.))
    (fun (p, ft, ff) ->
      let theta = Ad.scalar p in
      let open Adev.Syntax in
      let obj =
        let* b = Adev.sample (Dist.flip_enum theta) in
        Adev.return (Ad.scalar (if b then ft else ff))
      in
      let _, grads = Adev.grad ~params:[ ("theta", theta) ] obj k0 in
      Float.abs (Tensor.to_scalar (List.assoc "theta" grads) -. (ft -. ff))
      < 1e-9)

(* The Theorem 5.2 property: all strategy versions of a primitive denote
   the same distribution, so gradient estimators built from any of them
   target the same objective. ENUM is exact and serves as the oracle;
   REINFORCE and MVD must agree with it in expectation. *)
let prop_strategies_agree =
  QCheck.Test.make ~name:"flip strategies estimate the same gradient"
    ~count:12
    QCheck.(triple (float_range 0.15 0.85) (float_range (-2.) 2.)
              (float_range (-2.) 2.))
    (fun (p, ft, ff) ->
      let objective sample_flip =
        let theta = Ad.scalar p in
        ( theta,
          let open Adev.Syntax in
          let* b = sample_flip theta in
          Adev.return (Ad.scalar (if b then ft else ff)) )
      in
      let exact =
        let theta, obj = objective (fun t -> Adev.sample (Dist.flip_enum t)) in
        let _, grads = Adev.grad ~params:[ ("theta", theta) ] obj k0 in
        Tensor.to_scalar (List.assoc "theta" grads)
      in
      let mean_of sample_flip n =
        let total = ref 0. in
        for i = 0 to n - 1 do
          let theta, obj = objective sample_flip in
          let _, grads =
            Adev.grad ~params:[ ("theta", theta) ] obj (Prng.fold_in k0 i)
          in
          total := !total +. Tensor.to_scalar (List.assoc "theta" grads)
        done;
        !total /. float_of_int n
      in
      let tol = 0.15 +. (0.1 *. Float.abs exact) in
      Float.abs (mean_of (fun t -> Adev.sample (Dist.flip_reinforce t)) 6000 -. exact) < tol
      && Float.abs (mean_of (fun t -> Adev.sample (Dist.flip_mvd t)) 500 -. exact) < 1e-9)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ prop_enum_exact; prop_strategies_agree ]

let suites =
  [ ( "adev",
      [ Alcotest.test_case "reparam normal" `Slow test_reparam_normal;
        Alcotest.test_case "reinforce normal" `Slow test_reinforce_normal;
        Alcotest.test_case "mvd normal mean" `Slow test_mvd_normal_mean;
        Alcotest.test_case "mvd normal scale" `Slow test_mvd_normal_scale;
        Alcotest.test_case "reparam normal scale" `Slow
          test_reparam_normal_scale;
        Alcotest.test_case "flip enum exact" `Quick test_flip_enum_exact;
        Alcotest.test_case "flip mvd exact" `Quick
          test_flip_mvd_exact_for_deterministic_continuation;
        Alcotest.test_case "flip reinforce" `Slow test_flip_reinforce;
        Alcotest.test_case "flip reinforce baseline" `Slow
          test_flip_reinforce_baseline;
        Alcotest.test_case "baseline reduces variance" `Slow
          test_baseline_reduces_variance;
        Alcotest.test_case "categorical enum exact" `Quick
          test_categorical_enum_exact;
        Alcotest.test_case "score" `Quick test_score;
        Alcotest.test_case "score with reinforce" `Slow
          test_score_with_reinforce_site;
        Alcotest.test_case "compound mixed strategies" `Slow
          test_compound_mixed_strategies;
        Alcotest.test_case "batched expectation" `Slow
          test_expectation_mean_unbiased;
        Alcotest.test_case "forward vs reverse (reinforce)" `Slow
          test_forward_reverse_agree_reinforce;
        Alcotest.test_case "forward flip enum" `Quick
          test_forward_flip_enum_exact;
        Alcotest.test_case "forward flip mvd" `Quick test_forward_flip_mvd;
        Alcotest.test_case "forward normal mvd" `Slow test_forward_normal_mvd;
        Alcotest.test_case "forward reparam" `Slow test_forward_reparam;
        Alcotest.test_case "forward score" `Quick test_forward_score ]
      @ qcheck_cases ) ]
