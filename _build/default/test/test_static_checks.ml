(* Section 5 ("Static Checks and Unbiasedness") reproductions.

   The paper gives two concrete failure modes of fixed-strategy PPLs:

   1. Pyro's default REPARAM assumes the joint density is differentiable
      in Gaussian samples; a program that branches on [x < k] violates
      this silently and gets biased gradients. Here we (a) compute the
      bias of that naive estimator explicitly, (b) show our runtime
      R/R-star discipline rejects the program under REPARAM, and
      (c) show the REINFORCE and MVD versions of the same program give
      unbiased gradients.

   2. Gen's default assumes primitive supports do not depend on learned
      parameters; a uniform with learned endpoints violates it. Our
      [Dist.uniform] makes the violation unrepresentable (bounds are
      plain floats), and we exhibit the bias a Gen-style estimator would
      incur. *)

let k0 = Prng.key 27182

let check_close name ~tol expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %g, got %g (tol %g)" name expected actual tol

(* Objective: L(theta) = E_{x ~ N(theta, 1)} [ if x < 0 then 0 else 1 ]
           = 1 - Phi(-theta) = Phi(theta).
   True gradient: phi(theta), the standard normal density. *)

let theta_v = 0.4
let phi t = Float.exp (-0.5 *. t *. t) /. Float.sqrt (2. *. Float.pi)
let true_grad = phi theta_v

let branchy_objective sample_normal =
  let open Adev.Syntax in
  let theta = Ad.scalar theta_v in
  ( theta,
    let* x = Adev.sample (sample_normal theta (Ad.scalar 1.)) in
    let xv = Gen.rigid x in
    Adev.return (Ad.scalar (if xv < 0. then 0. else 1.)) )

let mean_grad ~n build =
  let total = ref 0. in
  for i = 0 to n - 1 do
    let theta, obj = build () in
    let _, grads =
      Adev.grad ~params:[ ("theta", theta) ] obj (Prng.fold_in k0 i)
    in
    total := !total +. Tensor.to_scalar (List.assoc "theta" grads)
  done;
  !total /. float_of_int n

let test_reparam_branching_rejected () =
  (* The discipline that makes Pyro's failure unrepresentable: a REPARAM
     sample is smooth and may not be branched on. *)
  Alcotest.(check bool) "rejected" true
    (try
       let theta, obj = branchy_objective Dist.normal_reparam in
       ignore (Adev.grad ~params:[ ("theta", theta) ] obj k0);
       false
     with Value.Smoothness_error _ -> true)

let test_naive_reparam_is_biased () =
  (* What Pyro's default actually computes on this program: the pathwise
     derivative of the branch output, which is 0 almost everywhere — a
     100% biased estimate of phi(theta) =~ 0.368. We build it by hand
     (branching on the primal while keeping the pathwise graph). *)
  let naive =
    mean_grad ~n:20000 (fun () ->
        let theta = Ad.scalar theta_v in
        let open Adev.Syntax in
        ( theta,
          let* x = Adev.sample (Dist.normal_reparam theta (Ad.scalar 1.)) in
          (* Deliberately peeking at the primal: the biased engine's
             view of the program. *)
          let xv = Tensor.to_scalar (Ad.value x) in
          Adev.return
            (if xv < 0. then Ad.scale 0. x else Ad.add_scalar 1. (Ad.scale 0. x)) ))
  in
  check_close "naive pathwise gradient is 0" ~tol:1e-9 0. naive;
  Alcotest.(check bool) "which is badly biased" true
    (Float.abs (naive -. true_grad) > 0.3)

let test_reinforce_branching_unbiased () =
  let g =
    mean_grad ~n:60000 (fun () -> branchy_objective Dist.normal_reinforce)
  in
  check_close "REINFORCE unbiased through branch" ~tol:0.02 true_grad g

let test_mvd_branching_unbiased () =
  let g = mean_grad ~n:30000 (fun () -> branchy_objective Dist.normal_mvd) in
  check_close "MVD unbiased through branch" ~tol:0.02 true_grad g

(* Example 2: uniform with learned endpoints.
   L(b) = E_{x ~ U(0, b)} [x^2] = b^2 / 3; dL/db = 2b/3.
   Gen-style estimators differentiate the density at a fixed sample
   (d/db log (1/b) = -1/b), giving E[x^2] * (-1/b) + 0 = -b^2/3 * 1/b =
   ... a wrong (even wrong-signed) gradient, because the support moves
   with b. *)

let test_uniform_learned_endpoint_unrepresentable () =
  (* Our API simply cannot close a uniform over an AD parameter: bounds
     are floats. The nearest legal program fixes the bounds. This test
     documents the restriction by demonstrating the bias the forbidden
     program would have. *)
  let b = 2.0 in
  let true_gradient = 2. *. b /. 3. in
  (* The Gen-style score-function estimate with parameter-dependent
     support: (x^2) * d/db log(1/b) = -x^2 / b. *)
  let n = 40000 in
  let total = ref 0. in
  Array.iter
    (fun k ->
      let x = Prng.uniform_range k 0. b in
      total := !total +. (-.(x *. x) /. b))
    (Prng.split_many k0 n);
  let biased = !total /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "Gen-style estimate %.3f vs true %.3f" biased true_gradient)
    true
    (Float.abs (biased -. true_gradient) > 1.);
  Alcotest.(check bool) "wrong sign, even" true (biased < 0.)

let test_uniform_bounds_can_depend_on_rigid_randomness () =
  (* Per Section 5: uniform bounds may depend on other random choices
     (e.g. a REINFORCE Gaussian with a learned mean), just not directly
     on parameters. *)
  let open Gen.Syntax in
  let prog frame =
    let mu = Store.Frame.get frame "m" in
    let* c = Gen.sample (Dist.normal_reinforce mu (Ad.scalar 1.)) "c" in
    let width = 1. +. Float.abs (Gen.rigid c) in
    let* x = Gen.sample (Dist.uniform 0. width) "x" in
    Gen.return x
  in
  let store = Store.create () in
  Store.ensure store "m" (fun () -> Tensor.scalar 0.5);
  let frame = Store.Frame.make store in
  let _, trace, logd = Gen.sample_prior (prog frame) k0 in
  Alcotest.(check bool) "runs with finite density" true (Float.is_finite logd);
  Alcotest.(check int) "two sites" 2 (Trace.size trace)

let test_relu_usable_at_own_risk () =
  (* The discussion section: ReLU gets the restrictive subgradient-0
     treatment; it is usable, with the kink's measure-zero caveat. *)
  let x = Ad.const (Tensor.of_list1 [ -1.; 2. ]) in
  let y = Ad.sum (Ad.relu x) in
  Ad.backward y;
  Alcotest.(check bool) "subgradient" true
    (Tensor.approx_equal (Ad.grad x) (Tensor.of_list1 [ 0.; 1. ]))

let suites =
  [ ( "static-checks",
      [ Alcotest.test_case "reparam branching rejected" `Quick
          test_reparam_branching_rejected;
        Alcotest.test_case "naive reparam biased" `Slow
          test_naive_reparam_is_biased;
        Alcotest.test_case "reinforce through branch" `Slow
          test_reinforce_branching_unbiased;
        Alcotest.test_case "mvd through branch" `Slow
          test_mvd_branching_unbiased;
        Alcotest.test_case "uniform learned endpoints" `Slow
          test_uniform_learned_endpoint_unrepresentable;
        Alcotest.test_case "uniform rigid bounds ok" `Quick
          test_uniform_bounds_can_depend_on_rigid_randomness;
        Alcotest.test_case "relu at own risk" `Quick test_relu_usable_at_own_risk
      ] ) ]
