(* Tests for the YOLO derivation of reverse mode (Fig. 9): each pass in
   isolation, the end-to-end JVP/VJP agreement, unbiasedness against
   closed forms, and agreement with the main ADEV implementation. *)

let k0 = Prng.key 1311

let check_close name ~tol expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %g, got %g (tol %g)" name expected actual tol

(* The Fig. 9 example: L(theta) = E_{x ~ N(theta1, 1)} [sin x + theta2]. *)
let fig9 =
  { Yolo.params = [ "theta1"; "theta2" ];
    body =
      [ Yolo.Sample_normal ("x", Yolo.Var "theta1", Yolo.Const 1.);
        Yolo.Let ("y", Yolo.Sin (Yolo.Var "x"));
        Yolo.Let ("z", Yolo.Add (Yolo.Var "y", Yolo.Var "theta2")) ];
    result = "z" }

let theta = [ ("theta1", 0.7); ("theta2", 0.2) ]

(* Closed forms: E = e^{-1/2} sin theta1 + theta2;
   dE/dtheta1 = e^{-1/2} cos theta1; dE/dtheta2 = 1. *)
let exact_value = (Float.exp (-0.5) *. Float.sin 0.7) +. 0.2
let exact_g1 = Float.exp (-0.5) *. Float.cos 0.7

let test_validate () =
  Alcotest.(check bool) "fig9 valid" true (Yolo.validate fig9 = Ok ());
  let bad_scope =
    { fig9 with body = [ Yolo.Let ("y", Yolo.Var "nope") ] }
  in
  Alcotest.(check bool) "unbound rejected" true
    (match Yolo.validate bad_scope with Error _ -> true | Ok () -> false);
  let double_def =
    { fig9 with
      body =
        [ Yolo.Let ("y", Yolo.Const 1.); Yolo.Let ("y", Yolo.Const 2.) ];
      result = "y" }
  in
  Alcotest.(check bool) "double definition rejected" true
    (match Yolo.validate double_def with Error _ -> true | Ok () -> false)

let test_anf_evaluates () =
  (* Deterministic program: the flattened body computes the same value. *)
  let prog =
    { Yolo.params = [ "a" ];
      body =
        [ Yolo.Let
            ( "r",
              Yolo.Add
                ( Yolo.Mul (Yolo.Var "a", Yolo.Var "a"),
                  Yolo.Sin (Yolo.Neg (Yolo.Var "a")) ) ) ];
      result = "r" }
  in
  let body, result = Yolo.anf prog in
  let env = Yolo.run_nonlin [ ("a", 1.3) ] k0 body in
  check_close "anf value" ~tol:1e-12
    ((1.3 *. 1.3) +. Float.sin (-1.3))
    (List.assoc result env)

let test_jvp_deterministic () =
  (* d/da (a^2 + exp a) = 2a + e^a, exact for deterministic programs. *)
  let prog =
    { Yolo.params = [ "a" ];
      body =
        [ Yolo.Let
            ( "r",
              Yolo.Add (Yolo.Mul (Yolo.Var "a", Yolo.Var "a"), Yolo.Exp (Yolo.Var "a"))
            ) ];
      result = "r" }
  in
  let v, dv = Yolo.jvp prog [ ("a", 0.8) ] ~direction:[ ("a", 1.) ] k0 in
  check_close "jvp value" ~tol:1e-12 ((0.8 ** 2.) +. Float.exp 0.8) v;
  check_close "jvp derivative" ~tol:1e-12 (1.6 +. Float.exp 0.8) dv

let test_unzip_trace () =
  (* The trace of fig9 contains exactly the nonlinear values the linear
     part needs: the cos-coefficient and the sampling eps. *)
  let dual = Yolo.forward fig9 in
  let _, trace, _ = Yolo.unzip dual in
  Alcotest.(check bool) "trace has a cos coefficient" true
    (List.exists (fun v -> String.length v > 4 && String.sub v 1 4 = "dcos") trace);
  Alcotest.(check bool) "trace has the sampling eps" true
    (List.exists (fun v -> String.length v > 3 && String.sub v 1 3 = "eps") trace)

let test_jvp_matches_reverse_per_sample () =
  (* With the same key (same eps), the JVP in direction e_i equals the
     i-th reverse-mode gradient component exactly. *)
  List.iteri
    (fun i param ->
      let direction = List.map (fun (p, _) -> (p, if p = param then 1. else 0.)) theta in
      let _, dv = Yolo.jvp fig9 theta ~direction k0 in
      let _, grad = Yolo.reverse_grad fig9 theta k0 in
      check_close
        (Printf.sprintf "component %d" i)
        ~tol:1e-12 dv (List.assoc param grad))
    [ "theta1"; "theta2" ]

let test_reverse_grad_unbiased () =
  let n = 60000 in
  let total_v = ref 0. and total_g1 = ref 0. and total_g2 = ref 0. in
  for i = 0 to n - 1 do
    let v, grad = Yolo.reverse_grad fig9 theta (Prng.fold_in k0 i) in
    total_v := !total_v +. v;
    total_g1 := !total_g1 +. List.assoc "theta1" grad;
    total_g2 := !total_g2 +. List.assoc "theta2" grad
  done;
  let nf = float_of_int n in
  check_close "E value" ~tol:0.02 exact_value (!total_v /. nf);
  check_close "dE/dtheta1" ~tol:0.02 exact_g1 (!total_g1 /. nf);
  check_close "dE/dtheta2" ~tol:1e-9 1. (!total_g2 /. nf)

let test_agrees_with_main_adev () =
  (* The same objective through the main (surrogate-loss) reverse mode:
     both are unbiased for the same derivative. *)
  let n = 60000 in
  let total = ref 0. in
  for i = 0 to n - 1 do
    let th1 = Ad.scalar 0.7 in
    let open Adev.Syntax in
    let obj =
      let* x = Adev.sample (Dist.normal_reparam th1 (Ad.scalar 1.)) in
      (* sin via a custom node (value + derivative): legitimate since x
         is smooth and sin is differentiable. *)
      let s =
        Ad.custom
          ~value:(Tensor.map Float.sin (Ad.value x))
          ~parents:[ (x, fun g -> Tensor.mul g (Tensor.map Float.cos (Ad.value x))) ]
      in
      Adev.return (Ad.add_scalar 0.2 s)
    in
    let _, grads =
      Adev.grad ~params:[ ("th1", th1) ] obj (Prng.fold_in (Prng.key 77) i)
    in
    total := !total +. Tensor.to_scalar (List.assoc "th1" grads)
  done;
  let adev_g1 = !total /. float_of_int n in
  check_close "main adev matches closed form" ~tol:0.02 exact_g1 adev_g1

let test_scale_and_sub () =
  (* Psub and negative scales transpose correctly:
     r = a - 2 b  =>  dr/da = 1, dr/db = -2. *)
  let prog =
    { Yolo.params = [ "a"; "b" ];
      body =
        [ Yolo.Let
            ("r", Yolo.Sub (Yolo.Var "a", Yolo.Mul (Yolo.Const 2., Yolo.Var "b")))
        ];
      result = "r" }
  in
  let _, grad = Yolo.reverse_grad prog [ ("a", 1.); ("b", 2.) ] k0 in
  check_close "d/da" ~tol:1e-12 1. (List.assoc "a" grad);
  check_close "d/db" ~tol:1e-12 (-2.) (List.assoc "b" grad)

let test_fan_out () =
  (* A variable used twice accumulates cotangents: r = a * a. *)
  let prog =
    { Yolo.params = [ "a" ];
      body = [ Yolo.Let ("r", Yolo.Mul (Yolo.Var "a", Yolo.Var "a")) ];
      result = "r" }
  in
  let _, grad = Yolo.reverse_grad prog [ ("a", 3.) ] k0 in
  check_close "fan-out" ~tol:1e-12 6. (List.assoc "a" grad)

let test_sigma_tangent () =
  (* Gradient with respect to a scale parameter flows through the eps
     coefficient: L = E[x^2], x ~ N(0, s): dL/ds = 2s. *)
  let prog =
    { Yolo.params = [ "s" ];
      body =
        [ Yolo.Sample_normal ("x", Yolo.Const 0., Yolo.Var "s");
          Yolo.Let ("r", Yolo.Mul (Yolo.Var "x", Yolo.Var "x")) ];
      result = "r" }
  in
  let n = 40000 in
  let total = ref 0. in
  for i = 0 to n - 1 do
    let _, grad = Yolo.reverse_grad prog [ ("s", 0.9) ] (Prng.fold_in k0 i) in
    total := !total +. List.assoc "s" grad
  done;
  check_close "dE/dsigma" ~tol:0.05 1.8 (!total /. float_of_int n)

(* Property: on random deterministic programs, reverse_grad matches
   finite differences. *)
let prop_reverse_matches_fd =
  QCheck.Test.make ~name:"reverse grad matches finite differences" ~count:60
    QCheck.(pair (float_range 0.2 1.5) (float_range 0.2 1.5))
    (fun (a, b) ->
      let prog =
        { Yolo.params = [ "a"; "b" ];
          body =
            [ Yolo.Let ("u", Yolo.Mul (Yolo.Var "a", Yolo.Sin (Yolo.Var "b")));
              Yolo.Let ("v", Yolo.Exp (Yolo.Sub (Yolo.Var "u", Yolo.Var "b")));
              Yolo.Let ("r", Yolo.Add (Yolo.Var "v", Yolo.Mul (Yolo.Var "a", Yolo.Var "a")))
            ];
          result = "r" }
      in
      let value env = fst (Yolo.reverse_grad prog env k0) in
      let _, grad = Yolo.reverse_grad prog [ ("a", a); ("b", b) ] k0 in
      let eps = 1e-5 in
      let fd p =
        let bump d = value (List.map (fun (q, v) -> (q, if q = p then v +. d else v)) [ ("a", a); ("b", b) ]) in
        (bump eps -. bump (-.eps)) /. (2. *. eps)
      in
      Float.abs (List.assoc "a" grad -. fd "a") < 1e-4
      && Float.abs (List.assoc "b" grad -. fd "b") < 1e-4)

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_reverse_matches_fd ]

let suites =
  [ ( "yolo",
      [ Alcotest.test_case "validate" `Quick test_validate;
        Alcotest.test_case "anf evaluates" `Quick test_anf_evaluates;
        Alcotest.test_case "jvp deterministic" `Quick test_jvp_deterministic;
        Alcotest.test_case "unzip trace" `Quick test_unzip_trace;
        Alcotest.test_case "jvp = reverse per sample" `Quick
          test_jvp_matches_reverse_per_sample;
        Alcotest.test_case "reverse grad unbiased" `Slow
          test_reverse_grad_unbiased;
        Alcotest.test_case "agrees with main adev" `Slow
          test_agrees_with_main_adev;
        Alcotest.test_case "sub and scale" `Quick test_scale_and_sub;
        Alcotest.test_case "fan-out" `Quick test_fan_out;
        Alcotest.test_case "sigma tangent" `Slow test_sigma_tangent ]
      @ qcheck_cases ) ]
