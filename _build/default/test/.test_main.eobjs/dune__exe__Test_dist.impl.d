test/test_dist.ml: Ad Alcotest Array Baseline Dist Float List Option Prng QCheck QCheck_alcotest Special Tensor Value
