test/test_ad.ml: Ad Alcotest List QCheck QCheck_alcotest Tensor
