test/test_gen_exact.ml: Ad Adev Alcotest Array Dist Float Gen List Objectives Optim Option Printf Prng QCheck QCheck_alcotest Store Tensor Trace Train Value
