test/test_trace.ml: Alcotest List Printf QCheck QCheck_alcotest String Trace Value
