test/test_adev.ml: Ad Adev Alcotest Array Baseline Dist Float Forward List Printf Prng QCheck QCheck_alcotest Tensor
