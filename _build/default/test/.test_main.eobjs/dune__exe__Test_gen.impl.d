test/test_gen.ml: Ad Adev Alcotest Array Dist Float Gen List Option Printf Prng QCheck QCheck_alcotest Tensor Trace Value
