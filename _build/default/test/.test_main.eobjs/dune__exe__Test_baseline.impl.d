test/test_baseline.ml: Ad Adev Air Alcotest Data Dist Float Gen Grid Hashtbl List Objectives Option Prng Store Svi Tensor Vae Vae_hand
