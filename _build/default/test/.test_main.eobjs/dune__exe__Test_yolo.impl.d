test/test_yolo.ml: Ad Adev Alcotest Dist Float List Printf Prng QCheck QCheck_alcotest String Tensor Yolo
