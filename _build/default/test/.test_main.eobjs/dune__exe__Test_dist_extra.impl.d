test/test_dist_extra.ml: Ad Adev Alcotest Array Dist Float Gen List Option Prng Tensor Trace
