test/test_nn.ml: Ad Alcotest Float Fun Layer List Prng Store Tensor
