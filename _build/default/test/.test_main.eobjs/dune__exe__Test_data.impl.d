test/test_data.ml: Alcotest Array Data List Prng Stdlib String Tensor
