test/test_static_checks.ml: Ad Adev Alcotest Array Dist Float Gen List Printf Prng Store Tensor Trace Value
