test/test_vi.ml: Ad Adev Air Alcotest Coin Cone Cvae Data Dist Float Gen Grid List Mcvi Objectives Optim Printf Prng Regression Ssvae Store Tensor Train Vae
