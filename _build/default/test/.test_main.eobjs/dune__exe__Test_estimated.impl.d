test/test_estimated.ml: Ad Adev Alcotest Dist Estimated Float Prng Tensor
