test/test_misc.ml: Ad Adev Alcotest Dist Float Forward Gen List Objectives Optim Printf Prng Store Tensor Train
