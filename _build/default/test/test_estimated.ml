(* Statistical unbiasedness tests for the estimated-real (R-tilde)
   combinators of Section 3.3: composing estimators through the special
   operators must preserve expectations, while naive monadic
   post-processing would introduce Jensen bias (also demonstrated). *)

let k0 = Prng.key 4242

let check_close name ~tol expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %g, got %g (tol %g)" name expected actual tol

(* A noisy estimator of 0.3: 0.3 + N(0, 0.2). *)
let noisy_03 =
  Estimated.of_fun (fun key -> Ad.scalar (0.3 +. (0.2 *. Prng.normal key)))

(* An estimator of 1.0 from an expectation with REINFORCE inside. *)
let estimated_one =
  let open Adev.Syntax in
  Estimated.of_expectation
    (let* b = Adev.sample (Dist.flip_reinforce (Ad.scalar 0.5)) in
     Adev.return (Ad.scalar (if b then 1.5 else 0.5)))

let test_const () =
  check_close "const" ~tol:1e-12 2.5 (Estimated.mean (Estimated.const 2.5) k0)

let test_of_expectation () =
  check_close "E-estimate" ~tol:0.03 1.
    (Estimated.mean ~samples:4000 estimated_one k0)

let test_linear_ops () =
  check_close "add" ~tol:0.03 1.3
    (Estimated.mean ~samples:4000 (Estimated.add noisy_03 estimated_one) k0);
  check_close "sub" ~tol:0.03 0.7
    (Estimated.mean ~samples:4000 (Estimated.sub estimated_one noisy_03) k0);
  check_close "scale" ~tol:0.02 0.6
    (Estimated.mean ~samples:4000 (Estimated.scale 2. noisy_03) k0);
  check_close "shift" ~tol:0.02 1.3
    (Estimated.mean ~samples:4000 (Estimated.shift 1. noisy_03) k0)

let test_mul_independent () =
  (* E[XY] = E[X] E[Y] for independent estimates: 0.3 * 1.0. *)
  check_close "mul" ~tol:0.03 0.3
    (Estimated.mean ~samples:8000 (Estimated.mul noisy_03 estimated_one) k0)

let test_exp_unbiased () =
  (* exp_R-tilde of the noisy 0.3-estimator must average e^0.3, not
     E[e^X] = e^{0.3 + 0.02} (the Jensen-biased naive value). *)
  let est = Estimated.exp ~rate:3. noisy_03 in
  let m = Estimated.mean ~samples:60000 est k0 in
  check_close "unbiased exp" ~tol:0.03 (Float.exp 0.3) m;
  (* The naive (biased) estimator is measurably different. *)
  let naive =
    Estimated.of_fun (fun key ->
        Ad.exp (Estimated.run noisy_03 key))
  in
  let m_naive = Estimated.mean ~samples:60000 naive k0 in
  check_close "naive is Jensen-biased" ~tol:0.01
    (Float.exp (0.3 +. (0.2 ** 2. /. 2.)))
    m_naive;
  Alcotest.(check bool) "bias direction" true (m_naive > m)

let test_exp_of_const () =
  let est = Estimated.exp ~rate:2. (Estimated.const 1.2) in
  check_close "exp of const" ~tol:0.05 (Float.exp 1.2)
    (Estimated.mean ~samples:40000 est k0)

let test_reciprocal () =
  (* 1 / 1.25 with estimates concentrated near the anchor. *)
  let x =
    Estimated.of_fun (fun key -> Ad.scalar (1.25 +. (0.05 *. Prng.normal key)))
  in
  let est = Estimated.reciprocal_mean ~anchor:1.25 x in
  check_close "reciprocal" ~tol:0.02 0.8
    (Estimated.mean ~samples:40000 est k0)

let test_exp_gradient_unbiased () =
  (* Gradients flow through the composed estimator: for X an estimator
     of theta (REPARAM), d/dtheta E[exp_R(X)] = e^theta. *)
  let theta_v = 0.4 in
  let n = 60000 in
  let total = ref 0. in
  for i = 0 to n - 1 do
    let theta = Ad.scalar theta_v in
    let x =
      Estimated.of_fun (fun key ->
          Ad.add theta (Ad.scalar (0.1 *. Prng.normal key)))
    in
    let est = Estimated.exp ~rate:2. x in
    let out = Estimated.run est (Prng.fold_in k0 i) in
    Ad.backward out;
    total := !total +. Tensor.to_scalar (Ad.grad theta)
  done;
  check_close "d/dtheta exp" ~tol:0.1 (Float.exp theta_v)
    (!total /. float_of_int n)

let suites =
  [ ( "estimated",
      [ Alcotest.test_case "const" `Quick test_const;
        Alcotest.test_case "of_expectation" `Slow test_of_expectation;
        Alcotest.test_case "linear ops" `Slow test_linear_ops;
        Alcotest.test_case "mul independent" `Slow test_mul_independent;
        Alcotest.test_case "exp unbiased vs Jensen" `Slow test_exp_unbiased;
        Alcotest.test_case "exp of const" `Slow test_exp_of_const;
        Alcotest.test_case "reciprocal" `Slow test_reciprocal;
        Alcotest.test_case "exp gradient" `Slow test_exp_gradient_unbiased ] )
  ]
