(* Tests for primitive distributions: log-density correctness against
   closed forms, gradient checks of log-densities with respect to
   parameters, agreement between samplers and densities (moments), and
   the per-strategy data (supports, reparam samplers, MVD couplings). *)

let k0 = Prng.key 1234

let check_close name ~tol expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %g, got %g (tol %g)" name expected actual tol

let primal a = Tensor.to_scalar (Ad.value a)

(* Gradient-check d.log_density at value [x] with respect to a scalar
   parameter embedded by [build]. *)
let check_logd_grad name build x expected_grad =
  let theta = Ad.scalar 0.8 in
  let d = build theta in
  let lp = d.Dist.log_density x in
  Ad.backward lp;
  check_close name ~tol:1e-5 expected_grad (Tensor.to_scalar (Ad.grad theta))

let test_normal_log_density () =
  let d = Dist.normal_reparam (Ad.scalar 1.) (Ad.scalar 2.) in
  let lp = primal (d.Dist.log_density (Ad.scalar 0.)) in
  (* log N(0; 1, 2) = -0.5*(1/2)^2 - log 2 - 0.5 log 2pi *)
  let expected = (-0.5 *. 0.25) -. Float.log 2. -. (0.5 *. Float.log (2. *. Float.pi)) in
  check_close "normal logpdf" ~tol:1e-12 expected lp

let test_normal_logd_grad_mu () =
  (* d/dmu log N(x; mu, 1) = x - mu; at mu = 0.8, x = 0.3: -0.5 *)
  check_logd_grad "normal dmu"
    (fun mu -> Dist.normal_reinforce mu (Ad.scalar 1.))
    (Ad.scalar 0.3) (-0.5)

let test_normal_logd_grad_sigma () =
  (* d/dsigma log N(x; 0, sigma) = x^2/sigma^3 - 1/sigma. *)
  let x = 0.3 in
  let sigma = 0.8 in
  check_logd_grad "normal dsigma"
    (fun s -> Dist.normal_reinforce (Ad.scalar 0.) s)
    (Ad.scalar x)
    ((x *. x /. (sigma ** 3.)) -. (1. /. sigma))

let test_normal_sampler_moments () =
  let d = Dist.normal_reparam (Ad.scalar 2.) (Ad.scalar 0.5) in
  let ks = Prng.split_many k0 20000 in
  let xs = Array.map (fun k -> primal (d.Dist.sample k)) ks in
  let mean = Array.fold_left ( +. ) 0. xs /. 20000. in
  check_close "normal sample mean" ~tol:0.02 2. mean

let test_normal_reparam_sampler () =
  let mu = Ad.scalar 2. and sigma = Ad.scalar 0.5 in
  let d = Dist.normal_reparam mu sigma in
  match d.Dist.reparam with
  | None -> Alcotest.fail "reparam sampler missing"
  | Some r ->
    let x = r k0 in
    Alcotest.(check bool) "reparam sample is smooth (non-leaf)" false
      (Ad.is_leaf x);
    (* Gradient of the sample wrt mu is exactly 1. *)
    Ad.backward x;
    check_close "dx/dmu" ~tol:1e-12 1. (Tensor.to_scalar (Ad.grad mu))

let test_normal_reinforce_sample_is_leaf () =
  let d = Dist.normal_reinforce (Ad.scalar 0.) (Ad.scalar 1.) in
  Alcotest.(check bool) "reinforce sample is rigid (leaf)" true
    (Ad.is_leaf (d.Dist.sample k0))

let test_normal_mvd_couplings () =
  let mu = Ad.scalar 1. and sigma = Ad.scalar 2. in
  let d = Dist.normal_mvd mu sigma in
  match d.Dist.mvd with
  | None -> Alcotest.fail "mvd data missing"
  | Some mvd ->
    let _, couplings = mvd k0 in
    Alcotest.(check int) "two couplings (mean, scale)" 2
      (List.length couplings);
    let c_mu = List.nth couplings 0 in
    check_close "mean coupling constant" ~tol:1e-12
      (1. /. (2. *. Float.sqrt (2. *. Float.pi)))
      c_mu.Dist.weight;
    (* The mean coupling is symmetric around mu. *)
    check_close "coupling symmetry" ~tol:1e-9 2.
      (primal c_mu.Dist.plus +. primal c_mu.Dist.minus);
    let c_sigma = List.nth couplings 1 in
    check_close "scale coupling constant" ~tol:1e-12 0.5 c_sigma.Dist.weight

let test_uniform () =
  let d = Dist.uniform 2. 5. in
  check_close "uniform logpdf in support" ~tol:1e-12 (-.Float.log 3.)
    (primal (d.Dist.log_density (Ad.scalar 3.)));
  Alcotest.(check bool) "out of support" true
    (primal (d.Dist.log_density (Ad.scalar 7.)) = Float.neg_infinity);
  let xs = Array.map (fun k -> primal (d.Dist.sample k)) (Prng.split_many k0 1000) in
  Alcotest.(check bool) "samples in range" true
    (Array.for_all (fun x -> x >= 2. && x < 5.) xs)

let test_flip () =
  let p = Ad.scalar 0.3 in
  let d = Dist.flip_enum p in
  check_close "flip true" ~tol:1e-9 (Float.log 0.3)
    (primal (d.Dist.log_density true));
  check_close "flip false" ~tol:1e-9 (Float.log 0.7)
    (primal (d.Dist.log_density false));
  (match d.Dist.support with
  | Some [ true; false ] -> ()
  | _ -> Alcotest.fail "flip support");
  (* Support densities sum to 1. *)
  let total =
    List.fold_left
      (fun acc b -> acc +. Float.exp (primal (d.Dist.log_density b)))
      0.
      (Option.get d.Dist.support)
  in
  check_close "flip normalized" ~tol:1e-9 1. total

let test_flip_logd_grad () =
  (* d/dp log p = 1/p at b = true. *)
  check_logd_grad "flip dp" Dist.flip_reinforce true (1. /. 0.8)

let test_flip_mvd_coupling () =
  let d = Dist.flip_mvd (Ad.scalar 0.3) in
  match d.Dist.mvd with
  | Some mvd ->
    let _, couplings = mvd k0 in
    let c = List.hd couplings in
    Alcotest.(check bool) "plus is true" true c.Dist.plus;
    Alcotest.(check bool) "minus is false" false c.Dist.minus;
    check_close "weight" ~tol:1e-12 1. c.Dist.weight
  | None -> Alcotest.fail "mvd data missing"

let test_categorical () =
  let probs = Ad.const (Tensor.of_list1 [ 0.2; 0.3; 0.5 ]) in
  let d = Dist.categorical_enum probs in
  check_close "cat logpdf" ~tol:1e-9 (Float.log 0.3)
    (primal (d.Dist.log_density 1));
  Alcotest.(check bool) "out of range" true
    (primal (d.Dist.log_density 5) = Float.neg_infinity);
  Alcotest.(check int) "support size" 3
    (List.length (Option.get d.Dist.support))

let test_categorical_logits () =
  let logits = Ad.const (Tensor.of_list1 [ 0.; 1.; 2. ]) in
  let d = Dist.categorical_logits_enum logits in
  let z = Float.log (1. +. Float.exp 1. +. Float.exp 2.) in
  check_close "logits logpdf" ~tol:1e-9 (1. -. z)
    (primal (d.Dist.log_density 1));
  let total =
    List.fold_left
      (fun acc i -> acc +. Float.exp (primal (d.Dist.log_density i)))
      0.
      (Option.get d.Dist.support)
  in
  check_close "logits normalized" ~tol:1e-9 1. total

let test_beta_log_density () =
  (* Beta(2, 3): log pdf at 0.4 = log(12 * 0.4 * 0.6^2). *)
  let d = Dist.beta_reinforce (Ad.scalar 2.) (Ad.scalar 3.) in
  let expected = Float.log (12. *. 0.4 *. (0.6 ** 2.)) in
  check_close "beta logpdf" ~tol:1e-9 expected
    (primal (d.Dist.log_density (Ad.scalar 0.4)))

let test_gamma_log_density () =
  (* Gamma(3, 1): log pdf at 2 = 2 log 2 - 2 - log 2!. *)
  let d = Dist.gamma_reinforce (Ad.scalar 3.) in
  let expected = (2. *. Float.log 2.) -. 2. -. Float.log 2. in
  check_close "gamma logpdf" ~tol:1e-9 expected
    (primal (d.Dist.log_density (Ad.scalar 2.)))

let test_poisson_log_density () =
  (* Poisson(2): P(3) = e^-2 2^3 / 3!. *)
  let d = Dist.poisson_reinforce (Ad.scalar 2.) in
  let expected = Float.log (Float.exp (-2.) *. 8. /. 6.) in
  check_close "poisson logpdf" ~tol:1e-9 expected
    (primal (d.Dist.log_density 3))

let test_mv_normal_diag () =
  let mean = Ad.const (Tensor.of_list1 [ 0.; 1. ]) in
  let std = Ad.const (Tensor.of_list1 [ 1.; 2. ]) in
  let d = Dist.mv_normal_diag_reparam mean std in
  let x = Ad.const (Tensor.of_list1 [ 0.5; 0. ]) in
  (* Sum of two univariate log densities. *)
  let lp1 = (-0.5 *. 0.25) -. (0.5 *. Float.log (2. *. Float.pi)) in
  let lp2 = (-0.5 *. 0.25) -. Float.log 2. -. (0.5 *. Float.log (2. *. Float.pi)) in
  check_close "mv logpdf" ~tol:1e-9 (lp1 +. lp2) (primal (d.Dist.log_density x))

let test_bernoulli_vector () =
  let probs = Ad.const (Tensor.of_list1 [ 0.9; 0.1 ]) in
  let d = Dist.bernoulli_vector probs in
  let x = Ad.const (Tensor.of_list1 [ 1.; 0. ]) in
  check_close "bvec logpdf" ~tol:1e-9
    (Float.log 0.9 +. Float.log 0.9)
    (primal (d.Dist.log_density x))

let test_bernoulli_logits_matches_probs () =
  let logits = Tensor.of_list1 [ 0.7; -1.2; 0.1 ] in
  let probs = Tensor.sigmoid logits in
  let dl = Dist.bernoulli_logits_vector (Ad.const logits) in
  let dp = Dist.bernoulli_vector (Ad.const probs) in
  let x = Ad.const (Tensor.of_list1 [ 1.; 0.; 1. ]) in
  check_close "logits vs probs" ~tol:1e-9
    (primal (dp.Dist.log_density x))
    (primal (dl.Dist.log_density x))

let test_special_functions () =
  check_close "lgamma 1" ~tol:1e-10 0. (Special.lgamma 1.);
  check_close "lgamma 5" ~tol:1e-9 (Float.log 24.) (Special.lgamma 5.);
  check_close "lgamma 0.5" ~tol:1e-9
    (0.5 *. Float.log Float.pi)
    (Special.lgamma 0.5);
  (* digamma(1) = -euler_gamma. *)
  check_close "digamma 1" ~tol:1e-8 (-0.5772156649015329) (Special.digamma 1.);
  (* digamma recurrence: psi(x+1) = psi(x) + 1/x. *)
  check_close "digamma recurrence" ~tol:1e-8
    (Special.digamma 2.3 +. (1. /. 2.3))
    (Special.digamma 3.3);
  (* lgamma_ad derivative is digamma. *)
  let a = Ad.scalar 2.7 in
  let l = Special.lgamma_ad a in
  Ad.backward l;
  check_close "lgamma_ad grad" ~tol:1e-8 (Special.digamma 2.7)
    (Tensor.to_scalar (Ad.grad a))

let test_value_typing () =
  Alcotest.(check bool) "bool of real raises" true
    (try
       ignore (Value.to_bool (Value.real 1.));
       false
     with Value.Type_error _ -> true);
  Alcotest.(check bool) "rigid leaf ok" true
    (Value.to_float_rigid (Value.real 2.) = 2.);
  let mu = Ad.scalar 0. in
  let smooth = Ad.add mu (Ad.scalar 1.) in
  Alcotest.(check bool) "rigid rejects smooth value" true
    (try
       ignore (Value.to_float_rigid (Value.Real smooth));
       false
     with Value.Smoothness_error _ -> true)

let test_baseline_cell () =
  let cell = Baseline.create ~decay:0.5 () in
  Alcotest.(check (float 0.)) "initial" 0. (Baseline.value cell);
  Baseline.update cell 10.;
  Alcotest.(check (float 1e-9)) "first observation" 10. (Baseline.value cell);
  Baseline.update cell 0.;
  Alcotest.(check (float 1e-9)) "ema" 5. (Baseline.value cell);
  Alcotest.(check int) "count" 2 (Baseline.observations cell)

(* Property: primitive sampler moments match the density's distribution
   for the normal family across random parameters. *)
let prop_normal_sampler_matches_density =
  QCheck.Test.make ~name:"normal sampler matches analytic moments" ~count:10
    QCheck.(pair (float_range (-3.) 3.) (float_range 0.3 2.))
    (fun (mu, sigma) ->
      let d = Dist.normal_reparam (Ad.scalar mu) (Ad.scalar sigma) in
      let ks = Prng.split_many (Prng.key 5) 4000 in
      let xs = Array.map (fun k -> primal (d.Dist.sample k)) ks in
      let mean = Array.fold_left ( +. ) 0. xs /. 4000. in
      Float.abs (mean -. mu) < 0.15)

(* Property: flip ENUM support sums to 1 for any p. *)
let prop_flip_normalized =
  QCheck.Test.make ~name:"flip support normalized" ~count:100
    QCheck.(float_range 0.01 0.99)
    (fun p ->
      let d = Dist.flip_enum (Ad.scalar p) in
      let total =
        List.fold_left
          (fun acc b -> acc +. Float.exp (primal (d.Dist.log_density b)))
          0.
          (Option.get d.Dist.support)
      in
      Float.abs (total -. 1.) < 1e-9)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_normal_sampler_matches_density; prop_flip_normalized ]

let suites =
  [ ( "dist",
      [ Alcotest.test_case "normal log density" `Quick test_normal_log_density;
        Alcotest.test_case "normal grad mu" `Quick test_normal_logd_grad_mu;
        Alcotest.test_case "normal grad sigma" `Quick
          test_normal_logd_grad_sigma;
        Alcotest.test_case "normal sampler moments" `Slow
          test_normal_sampler_moments;
        Alcotest.test_case "normal reparam sampler" `Quick
          test_normal_reparam_sampler;
        Alcotest.test_case "reinforce sample rigid" `Quick
          test_normal_reinforce_sample_is_leaf;
        Alcotest.test_case "normal mvd couplings" `Quick
          test_normal_mvd_couplings;
        Alcotest.test_case "uniform" `Quick test_uniform;
        Alcotest.test_case "flip" `Quick test_flip;
        Alcotest.test_case "flip grad" `Quick test_flip_logd_grad;
        Alcotest.test_case "flip mvd coupling" `Quick test_flip_mvd_coupling;
        Alcotest.test_case "categorical" `Quick test_categorical;
        Alcotest.test_case "categorical logits" `Quick test_categorical_logits;
        Alcotest.test_case "beta log density" `Quick test_beta_log_density;
        Alcotest.test_case "gamma log density" `Quick test_gamma_log_density;
        Alcotest.test_case "poisson log density" `Quick
          test_poisson_log_density;
        Alcotest.test_case "mv normal diag" `Quick test_mv_normal_diag;
        Alcotest.test_case "bernoulli vector" `Quick test_bernoulli_vector;
        Alcotest.test_case "bernoulli logits" `Quick
          test_bernoulli_logits_matches_probs;
        Alcotest.test_case "special functions" `Quick test_special_functions;
        Alcotest.test_case "value typing" `Quick test_value_typing;
        Alcotest.test_case "baseline cell" `Quick test_baseline_cell ]
      @ qcheck_cases ) ]
