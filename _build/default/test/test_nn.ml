(* Tests for parameter stores, frames, and neural layers. *)

let key = Prng.key 31

let test_store_basic () =
  let store = Store.create () in
  Store.ensure store "w" (fun () -> Tensor.of_list1 [ 1.; 2. ]);
  Store.ensure store "w" (fun () -> failwith "initializer must not rerun");
  Alcotest.(check bool) "mem" true (Store.mem store "w");
  Alcotest.(check (list string)) "names" [ "w" ] (Store.names store);
  Alcotest.(check int) "parameter count" 2 (Store.parameter_count store);
  Store.set store "w" (Tensor.of_list1 [ 3.; 4. ]);
  Alcotest.(check (float 0.)) "set" 3. (Tensor.get_flat (Store.tensor store "w") 0);
  Alcotest.(check bool) "unregistered raises" true
    (try
       ignore (Store.tensor store "nope");
       false
     with Not_found -> true)

let test_frame_shares_leaves () =
  let store = Store.create () in
  Store.ensure store "x" (fun () -> Tensor.scalar 2.);
  let frame = Store.Frame.make store in
  let a = Store.Frame.get frame "x" in
  let b = Store.Frame.get frame "x" in
  (* Same leaf: gradients from two uses accumulate in one node. *)
  let y = Ad.mul a b in
  Ad.backward y;
  Alcotest.(check (float 1e-9)) "d(x*x)/dx" 4.
    (Tensor.to_scalar (Tensor.of_array [||] (Tensor.to_array (Ad.grad a))));
  Alcotest.(check int) "one tracked param" 1
    (List.length (Store.Frame.params frame))

let test_detached_frame () =
  let store = Store.create () in
  Store.ensure store "x" (fun () -> Tensor.scalar 2.);
  let frame = Store.Frame.make_detached store in
  let a = Store.Frame.get frame "x" in
  Alcotest.(check bool) "detached leaf" true (Ad.is_leaf a);
  Alcotest.(check int) "records nothing" 0
    (List.length (Store.Frame.params frame))

let test_store_copy_isolated () =
  let store = Store.create () in
  Store.ensure store "x" (fun () -> Tensor.scalar 1.);
  let fork = Store.copy store in
  Store.set fork "x" (Tensor.scalar 9.);
  Alcotest.(check (float 0.)) "original untouched" 1.
    (Tensor.to_scalar (Store.tensor store "x"))

let test_dense_shapes () =
  let store = Store.create () in
  Layer.dense_register store ~name:"l" ~in_dim:3 ~out_dim:2 ~key;
  let frame = Store.Frame.make store in
  let y = Layer.dense frame ~name:"l" (Ad.const (Tensor.of_list1 [ 1.; 2.; 3. ])) in
  Alcotest.(check (array int)) "vector out" [| 2 |] (Ad.shape y);
  let batch = Ad.const (Tensor.of_list2 [ [ 1.; 2.; 3. ]; [ 0.; 0.; 0. ] ]) in
  let yb = Layer.dense frame ~name:"l" batch in
  Alcotest.(check (array int)) "batch out" [| 2; 2 |] (Ad.shape yb);
  (* Zero input row gives exactly the bias. *)
  let bias = Store.tensor store "l.b" in
  Alcotest.(check bool) "bias row" true
    (Tensor.approx_equal (Tensor.slice0 (Ad.value yb) 1) bias)

let test_mlp_grad_flows () =
  let store = Store.create () in
  Layer.mlp_register store ~name:"net" ~dims:[ 3; 4; 1 ] ~key;
  let frame = Store.Frame.make store in
  let y =
    Ad.sum
      (Layer.mlp frame ~name:"net" ~layers:2
         (Ad.const (Tensor.of_list1 [ 0.5; -0.5; 1. ])))
  in
  Ad.backward y;
  let grads = Store.Frame.grads frame in
  Alcotest.(check int) "4 tensors (2 layers x w,b)" 4 (List.length grads);
  List.iter
    (fun (name, g) ->
      if not (Tensor.all_finite g) then Alcotest.failf "grad %s not finite" name;
      if Tensor.sum (Tensor.map Float.abs g) = 0. then
        Alcotest.failf "grad %s identically zero" name)
    grads

let test_glorot_range () =
  let w = Layer.glorot key ~in_dim:10 ~out_dim:10 in
  let limit = Float.sqrt (6. /. 20.) in
  Alcotest.(check bool) "within limits" true
    (Tensor.max_elt w <= limit && Tensor.min_elt w >= -.limit);
  Alcotest.(check bool) "not constant" true (Tensor.max_elt w > Tensor.min_elt w)

let test_activations () =
  let x = Ad.const (Tensor.of_list1 [ -1.; 0.; 1. ]) in
  let check act f =
    let y = Ad.value (Layer.apply_activation act x) in
    let expected = Tensor.map f (Ad.value x) in
    Alcotest.(check bool) "activation" true (Tensor.approx_equal ~tol:1e-9 y expected)
  in
  check Layer.Linear Fun.id;
  check Layer.Relu (fun v -> Float.max v 0.);
  check Layer.Sigmoid (fun v -> 1. /. (1. +. Float.exp (-.v)));
  check Layer.Tanh Float.tanh

let suites =
  [ ( "nn",
      [ Alcotest.test_case "store basics" `Quick test_store_basic;
        Alcotest.test_case "frame shares leaves" `Quick
          test_frame_shares_leaves;
        Alcotest.test_case "detached frame" `Quick test_detached_frame;
        Alcotest.test_case "store copy" `Quick test_store_copy_isolated;
        Alcotest.test_case "dense shapes" `Quick test_dense_shapes;
        Alcotest.test_case "mlp grads flow" `Quick test_mlp_grad_flows;
        Alcotest.test_case "glorot range" `Quick test_glorot_range;
        Alcotest.test_case "activations" `Quick test_activations ] ) ]
