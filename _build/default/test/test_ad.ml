(* Reverse-mode AD tests: every vjp is validated against central finite
   differences, plus structural tests for stop_grad / custom nodes. *)

let check_grad ?(tol = 1e-4) name f x =
  (* f : Ad.t -> Ad.t (scalar output); x : Tensor.t input. *)
  let leaf = Ad.const x in
  let out = f leaf in
  Ad.backward out;
  let analytic = Ad.grad leaf in
  let numeric = Ad.finite_diff_grad (fun xv -> Ad.to_float (f (Ad.const xv))) x in
  if not (Tensor.approx_equal ~tol analytic numeric) then
    Alcotest.failf "%s: analytic %s vs numeric %s" name
      (Tensor.to_string analytic) (Tensor.to_string numeric)

let vec = Tensor.of_list1 [ 0.3; -1.2; 2.5 ]
let pos_vec = Tensor.of_list1 [ 0.3; 1.2; 2.5 ]
let mat = Tensor.of_list2 [ [ 0.5; -0.25 ]; [ 1.5; 2.0 ] ]

let test_unary_grads () =
  check_grad "exp" (fun x -> Ad.sum (Ad.exp x)) vec;
  check_grad "log" (fun x -> Ad.sum (Ad.log x)) pos_vec;
  check_grad "sqrt" (fun x -> Ad.sum (Ad.sqrt x)) pos_vec;
  check_grad "sigmoid" (fun x -> Ad.sum (Ad.sigmoid x)) vec;
  check_grad "tanh" (fun x -> Ad.sum (Ad.tanh x)) vec;
  check_grad "softplus" (fun x -> Ad.sum (Ad.softplus x)) vec;
  check_grad "relu away from kink" (fun x -> Ad.sum (Ad.relu x)) vec;
  check_grad "neg" (fun x -> Ad.sum (Ad.neg x)) vec;
  check_grad "scale" (fun x -> Ad.sum (Ad.scale 3.5 x)) vec;
  check_grad "add_scalar" (fun x -> Ad.sum (Ad.add_scalar 2. x)) vec;
  check_grad "pow 3" (fun x -> Ad.sum (Ad.pow_scalar x 3.)) pos_vec

let test_binary_grads () =
  let c = Ad.const (Tensor.of_list1 [ 1.5; 0.5; -0.7 ]) in
  check_grad "add" (fun x -> Ad.sum (Ad.add x c)) vec;
  check_grad "sub" (fun x -> Ad.sum (Ad.sub x c)) vec;
  check_grad "mul" (fun x -> Ad.sum (Ad.mul x c)) vec;
  check_grad "div" (fun x -> Ad.sum (Ad.div x c)) vec;
  check_grad "div denominator" (fun x -> Ad.sum (Ad.div c x)) pos_vec

let test_both_sides_of_mul () =
  (* Gradient flows to both operands when they are the same node. *)
  let x = Ad.const (Tensor.scalar 3.) in
  let y = Ad.mul x x in
  Ad.backward y;
  Alcotest.(check (float 1e-9)) "d(x^2)/dx = 2x" 6.
    (Tensor.to_scalar (Ad.grad x))

let test_broadcast_grad () =
  (* Broadcast a scalar across a vector; its gradient is the sum. *)
  let s = Ad.const (Tensor.scalar 2.) in
  let v = Ad.const vec in
  let out = Ad.sum (Ad.mul s v) in
  Ad.backward out;
  Alcotest.(check (float 1e-9)) "scalar grad is sum of vec"
    (Tensor.sum vec)
    (Tensor.to_scalar (Ad.grad s));
  (* Row broadcast against a matrix. *)
  let row = Ad.const (Tensor.of_array [| 1; 2 |] [| 1.; 2. |]) in
  let m = Ad.const mat in
  let out2 = Ad.sum (Ad.mul row m) in
  Ad.backward out2;
  let expected = Tensor.of_array [| 1; 2 |] [| 0.5 +. 1.5; -0.25 +. 2.0 |] in
  Alcotest.(check bool) "row grad sums columns" true
    (Tensor.approx_equal ~tol:1e-9 (Ad.grad row) expected)

let test_matmul_grads () =
  check_grad "matmul lhs"
    (fun x -> Ad.sum (Ad.matmul x (Ad.const mat)))
    (Tensor.of_list2 [ [ 1.; 2. ]; [ 3.; 4. ] ]);
  check_grad "matmul rhs"
    (fun x -> Ad.sum (Ad.matmul (Ad.const mat) x))
    (Tensor.of_list2 [ [ 1.; 2. ]; [ 3.; 4. ] ]);
  check_grad "matvec" (fun x -> Ad.sum (Ad.matmul (Ad.const mat) x))
    (Tensor.of_list1 [ 1.; -1. ]);
  check_grad "vecmat" (fun x -> Ad.sum (Ad.matmul x (Ad.const mat)))
    (Tensor.of_list1 [ 1.; -1. ]);
  check_grad "dot" (fun x -> Ad.dot x (Ad.const vec)) vec;
  check_grad "transpose" (fun x -> Ad.sum (Ad.matmul (Ad.transpose x) x)) mat

let test_reductions () =
  check_grad "sum" Ad.sum vec;
  check_grad "mean" Ad.mean vec;
  check_grad "logsumexp" Ad.logsumexp vec;
  check_grad "log_softmax pick"
    (fun x -> Ad.get (Ad.log_softmax x) [| 1 |])
    vec

let test_structural_grads () =
  check_grad "reshape" (fun x -> Ad.sum (Ad.pow_scalar (Ad.reshape [| 4 |] x) 2.)) mat;
  check_grad "slice0" (fun x -> Ad.sum (Ad.slice0 x 1)) mat;
  check_grad "get" (fun x -> Ad.get x [| 1; 0 |]) mat;
  check_grad "concat" (fun x -> Ad.sum (Ad.concat0 [ x; Ad.const mat ])) mat;
  check_grad "stack" (fun x -> Ad.sum (Ad.stack0 [ x; Ad.const vec ])) vec

let test_stop_grad () =
  let x = Ad.const (Tensor.scalar 2.) in
  let y = Ad.mul (Ad.stop_grad x) x in
  Ad.backward y;
  (* d/dx of stop(x) * x = stop(x) = 2, not 2x = 4. *)
  Alcotest.(check (float 1e-9)) "stop_grad blocks one path" 2.
    (Tensor.to_scalar (Ad.grad x))

let test_magic_box_identity () =
  (* The DiCE construction: y + stop(y)*(l - stop l) has the value of y and
     gradient dy + y dl. *)
  let theta = Ad.const (Tensor.scalar 1.5) in
  let y = Ad.mul theta theta in
  let l = Ad.scale 3. theta in
  let surrogate =
    Ad.add y (Ad.mul (Ad.stop_grad y) (Ad.sub l (Ad.stop_grad l)))
  in
  Alcotest.(check (float 1e-9)) "value unchanged" 2.25 (Ad.to_float surrogate);
  Ad.backward surrogate;
  (* dy/dtheta = 2*1.5 = 3; y*dl/dtheta = 2.25*3 = 6.75; total 9.75 *)
  Alcotest.(check (float 1e-9)) "gradient includes score term" 9.75
    (Tensor.to_scalar (Ad.grad theta))

let test_custom_node () =
  let x = Ad.const (Tensor.scalar 3.) in
  (* A custom node computing x^2 with a hand-written vjp. *)
  let y =
    Ad.custom
      ~value:(Tensor.scalar 9.)
      ~parents:[ (x, fun g -> Tensor.scale (2. *. 3.) g) ]
  in
  Ad.backward y;
  Alcotest.(check (float 1e-9)) "custom vjp" 6. (Tensor.to_scalar (Ad.grad x))

let test_shared_subexpression () =
  (* Diamond graph: z = (x + x) * (x + x); dz/dx = 8x. *)
  let x = Ad.const (Tensor.scalar 2.) in
  let s = Ad.add x x in
  let z = Ad.mul s s in
  Ad.backward z;
  Alcotest.(check (float 1e-9)) "diamond" 16. (Tensor.to_scalar (Ad.grad x))

let test_mlp_grad_check () =
  (* A small two-layer network, gradient-checked end to end. *)
  let w2 = Ad.const (Tensor.of_list2 [ [ 0.3 ]; [ -0.6 ] ]) in
  let f w1 =
    let h = Ad.tanh (Ad.matmul (Ad.const mat) w1) in
    Ad.sum (Ad.sigmoid (Ad.matmul h w2))
  in
  check_grad "mlp w1" f (Tensor.of_list2 [ [ 0.1; -0.2 ]; [ 0.4; 0.3 ] ])

let test_non_scalar_backward_rejected () =
  Alcotest.(check bool) "non-scalar root raises" true
    (try
       Ad.backward (Ad.const vec);
       false
     with Invalid_argument _ -> true)

let test_add_list () =
  let xs = List.map (fun v -> Ad.const (Tensor.scalar v)) [ 1.; 2.; 3. ] in
  Alcotest.(check (float 1e-9)) "add_list" 6. (Ad.to_float (Ad.add_list xs));
  Alcotest.(check (float 1e-9)) "add_list empty" 0.
    (Ad.to_float (Ad.add_list []))

(* Property: random expression trees gradient-check. *)

let arb_vec3 =
  QCheck.make
    ~print:(fun a -> Tensor.to_string (Tensor.of_array [| 3 |] a))
    QCheck.Gen.(array_size (return 3) (float_range 0.2 2.))

let prop_random_expression =
  QCheck.Test.make ~name:"random smooth expressions grad-check" ~count:60
    arb_vec3 (fun data ->
      let x = Tensor.of_array [| 3 |] data in
      let f x =
        Ad.O.(
          Ad.sum (Ad.exp (Ad.scale 0.3 x) * Ad.sigmoid x)
          + Ad.logsumexp x
          - Ad.mean (Ad.tanh x))
      in
      let leaf = Ad.const x in
      let out = f leaf in
      Ad.backward out;
      let analytic = Ad.grad leaf in
      let numeric =
        Ad.finite_diff_grad (fun xv -> Ad.to_float (f (Ad.const xv))) x
      in
      Tensor.approx_equal ~tol:1e-3 analytic numeric)

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_random_expression ]

let suites =
  [ ( "ad",
      [ Alcotest.test_case "unary grads" `Quick test_unary_grads;
        Alcotest.test_case "binary grads" `Quick test_binary_grads;
        Alcotest.test_case "mul both sides" `Quick test_both_sides_of_mul;
        Alcotest.test_case "broadcast grads" `Quick test_broadcast_grad;
        Alcotest.test_case "matmul grads" `Quick test_matmul_grads;
        Alcotest.test_case "reductions" `Quick test_reductions;
        Alcotest.test_case "structural grads" `Quick test_structural_grads;
        Alcotest.test_case "stop_grad" `Quick test_stop_grad;
        Alcotest.test_case "magic-box identity" `Quick test_magic_box_identity;
        Alcotest.test_case "custom node" `Quick test_custom_node;
        Alcotest.test_case "shared subexpression" `Quick
          test_shared_subexpression;
        Alcotest.test_case "mlp grad check" `Quick test_mlp_grad_check;
        Alcotest.test_case "non-scalar backward" `Quick
          test_non_scalar_backward_rejected;
        Alcotest.test_case "add_list" `Quick test_add_list ]
      @ qcheck_cases ) ]
