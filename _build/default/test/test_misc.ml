(* Edge-case and API-surface coverage: the small behaviours the larger
   suites route around — error paths, degenerate inputs, monadic laws,
   and numerical guards. *)

let k0 = Prng.key 13

let check_close name ~tol expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %g, got %g (tol %g)" name expected actual tol

let primal a = Tensor.to_scalar (Ad.value a)

(* Adev monad laws (observationally, through expectation). *)

let expect m = Adev.estimate ~samples:1 m k0

let test_adev_monad_laws () =
  let f x = Adev.return (Ad.scale 2. x) in
  let m = Adev.sample (Dist.normal_reparam (Ad.scalar 1.) (Ad.scalar 0.5)) in
  (* Left identity. *)
  check_close "left identity" ~tol:1e-12
    (expect (Adev.bind (Adev.return (Ad.scalar 3.)) f))
    (expect (f (Ad.scalar 3.)));
  (* Right identity: same key path means identical samples. *)
  check_close "right identity" ~tol:1e-9
    (expect (Adev.bind m Adev.return) +. 0.)
    (expect (Adev.bind m Adev.return));
  (* Map = bind-return. *)
  check_close "map" ~tol:1e-12
    (expect (Adev.map (Ad.scale 3.) (Adev.return (Ad.scalar 2.))))
    6.

let test_adev_replicate () =
  let open Adev.Syntax in
  let m =
    let* xs = Adev.replicate 5 (Adev.return (Ad.scalar 1.)) in
    Adev.return (Ad.add_list xs)
  in
  check_close "replicate collects" ~tol:1e-12 5. (expect m);
  let empty =
    let* xs = Adev.replicate 0 (Adev.return (Ad.scalar 1.)) in
    Adev.return (Ad.add_list xs)
  in
  check_close "replicate 0" ~tol:1e-12 0. (expect empty)

let test_adev_invalid_args () =
  Alcotest.(check bool) "expectation_mean 0 samples" true
    (try
       ignore (Adev.expectation_mean ~samples:0 (Adev.return (Ad.scalar 1.)) k0);
       false
     with Invalid_argument _ -> true);
  (* ENUM without support. *)
  let d = Dist.normal_reparam (Ad.scalar 0.) (Ad.scalar 1.) in
  let bad = { d with Dist.strategy = Dist.Enum } in
  Alcotest.(check bool) "enum without support" true
    (try
       ignore (expect (Adev.map (fun x -> x) (Adev.sample bad)));
       false
     with Invalid_argument _ -> true);
  (* MVD without couplings. *)
  let bad2 = { d with Dist.strategy = Dist.Mvd } in
  Alcotest.(check bool) "mvd without couplings" true
    (try
       ignore (expect (Adev.map (fun x -> x) (Adev.sample bad2)));
       false
     with Invalid_argument _ -> true)

let test_score_log_matches_score () =
  let open Adev.Syntax in
  let with_score =
    let* () = Adev.score (Ad.scalar 0.3) in
    Adev.return (Ad.scalar 2.)
  in
  let with_score_log =
    let* () = Adev.score_log (Ad.scalar (Float.log 0.3)) in
    Adev.return (Ad.scalar 2.)
  in
  check_close "score vs score_log" ~tol:1e-12 (expect with_score)
    (expect with_score_log)

(* Gen monad laws via sample_prior. *)

let test_gen_monad_laws () =
  let open Gen.Syntax in
  let d = Dist.normal_reinforce (Ad.scalar 0.) (Ad.scalar 1.) in
  let m = Gen.sample d "x" in
  let f x = Gen.return (primal x *. 2.) in
  let run p =
    let v, _, _ = Gen.sample_prior p k0 in
    v
  in
  let direct = run (Gen.bind m f) in
  (* Left identity on a deterministic program. *)
  check_close "left identity" ~tol:1e-12
    (run (Gen.bind (Gen.return 3.) (fun v -> Gen.return (v *. 2.))))
    6.;
  (* let+ sugar agrees with map. *)
  let sugared =
    run
      (let+ x = m in
       primal x *. 2.)
  in
  check_close "let+ = map" ~tol:1e-9 direct sugared

let test_gen_importance_invalid () =
  Alcotest.(check bool) "0 particles rejected" true
    (try
       ignore (Gen.importance ~particles:0 (fun _ -> Gen.Packed (Gen.return ())));
       false
     with Invalid_argument _ -> true)

let test_marginal_missing_keep_address () =
  let prog =
    Gen.marginal ~keep:[ "nope" ]
      (Gen.sample (Dist.normal_reinforce (Ad.scalar 0.) (Ad.scalar 1.)) "x")
      (Gen.importance_prior (Gen.Packed (Gen.return ())))
  in
  Alcotest.(check bool) "missing kept address rejected" true
    (try
       ignore (Gen.sample_prior prog k0);
       false
     with Invalid_argument _ -> true)

(* Optimizer edges. *)

let test_optim_reset () =
  let store = Store.create () in
  Store.ensure store "x" (fun () -> Tensor.scalar 0.) ;
  let opt = Optim.adam ~lr:0.1 () in
  Optim.step opt Optim.Ascend store [ ("x", Tensor.scalar 1.) ];
  let after_one = Tensor.to_scalar (Store.tensor store "x") in
  Optim.reset opt;
  Store.set store "x" (Tensor.scalar 0.);
  Optim.step opt Optim.Ascend store [ ("x", Tensor.scalar 1.) ];
  check_close "reset restarts moments" ~tol:1e-12 after_one
    (Tensor.to_scalar (Store.tensor store "x"))

(* AD edges. *)

let test_ad_deep_chain () =
  let x = Ad.const (Tensor.scalar 1.0001) in
  let y = ref x in
  for _ = 1 to 2000 do
    y := Ad.scale 1.0 (Ad.add_scalar 0. !y)
  done;
  Ad.backward !y;
  check_close "deep chain gradient" ~tol:1e-9 1.
    (Tensor.to_scalar (Ad.grad x))

let test_ad_wide_fanout () =
  let x = Ad.const (Tensor.scalar 2.) in
  let terms = List.init 500 (fun _ -> x) in
  let y = Ad.add_list terms in
  Ad.backward y;
  check_close "fanout gradient" ~tol:1e-9 500.
    (Tensor.to_scalar (Ad.grad x))

let test_ad_grad_before_backward_is_zero () =
  let x = Ad.const (Tensor.of_list1 [ 1.; 2. ]) in
  Alcotest.(check bool) "zero before backward" true
    (Tensor.approx_equal (Ad.grad x) (Tensor.zeros [| 2 |]))

let test_log_stable_guards () =
  (* flip at p = 0 or 1: log density finite sign behaviour. *)
  let d0 = Dist.flip_enum (Ad.scalar 0.) in
  let lp = primal (d0.Dist.log_density true) in
  Alcotest.(check bool) "log 0 clamped, very negative" true
    (lp < -20. && Float.is_finite lp);
  let d1 = Dist.flip_enum (Ad.scalar 1.) in
  check_close "log 1" ~tol:1e-9 0. (primal (d1.Dist.log_density true))

let test_uniform_invalid_bounds () =
  Alcotest.(check bool) "hi <= lo rejected" true
    (try
       ignore (Dist.uniform 2. 1.);
       false
     with Invalid_argument _ -> true)

let test_forward_dual_arithmetic () =
  let open Forward in
  let a = dual 2. 1. in
  let b = constant 3. in
  check_close "add" ~tol:1e-12 1. (add a b).dv;
  check_close "mul" ~tol:1e-12 3. (mul a b).dv;
  check_close "div" ~tol:1e-12 (1. /. 3.) (div a b).dv;
  check_close "neg" ~tol:1e-12 (-1.) (neg a).dv;
  check_close "exp" ~tol:1e-12 (Float.exp 2.) (exp a).dv;
  check_close "log" ~tol:1e-12 0.5 (log a).dv;
  check_close "sin" ~tol:1e-12 (Float.cos 2.) (sin_d a).dv;
  check_close "cos" ~tol:1e-12 (-.Float.sin 2.) (cos_d a).dv

let test_training_survives_degenerate_estimates () =
  (* Failure injection: a guide whose trace sometimes misses the model's
     support produces -inf objective samples; the non-finite-gradient
     guard must keep the parameters finite and training must still make
     progress on the finite samples. *)
  let model =
    let open Gen.Syntax in
    let* x = Gen.sample (Dist.uniform 0. 1.) "x" in
    let* () =
      Gen.observe (Dist.normal_reparam x (Ad.scalar 0.3)) (Ad.scalar 0.6)
    in
    Gen.return ()
  in
  let guide frame =
    (* A normal guide over a uniform-support model: samples outside
       [0, 1] hit density -inf. *)
    let mu = Store.Frame.get frame "fi.mu" in
    let open Gen.Syntax in
    let* _ = Gen.sample (Dist.normal_reinforce mu (Ad.scalar 0.3)) "x" in
    Gen.return ()
  in
  let store = Store.create () in
  Store.ensure store "fi.mu" (fun () -> Tensor.scalar 0.5);
  let optim = Optim.adam ~lr:0.02 () in
  let reports =
    Train.fit ~store ~optim ~steps:300
      ~objective:(fun frame _ -> Objectives.elbo ~model ~guide:(guide frame))
      k0
  in
  let mu = Tensor.to_scalar (Store.tensor store "fi.mu") in
  Alcotest.(check bool) "parameter stays finite" true (Float.is_finite mu);
  (* The censored objective is not the true one, so we only require the
     parameter to stay in a bounded region, not to converge. *)
  Alcotest.(check bool) "parameter stays bounded" true (Float.abs mu < 5.);
  (* Some estimates were degenerate (the -inf density poisons the
     score-function surrogate into NaN), but not all. *)
  let degenerate =
    List.length
      (List.filter
         (fun r -> not (Float.is_finite r.Train.objective))
         reports)
  in
  Alcotest.(check bool)
    (Printf.sprintf "some (%d) but not all estimates degenerate" degenerate)
    true
    (degenerate > 0 && degenerate < 300)

let test_train_on_step_callback () =
  let store = Store.create () in
  Store.ensure store "x" (fun () -> Tensor.scalar 0.);
  let seen = ref 0 in
  let (_ : Train.report list) =
    Train.fit ~store ~optim:(Optim.sgd ~lr:0.01) ~steps:7
      ~on_step:(fun r ->
        incr seen;
        if r.Train.step < 0 || r.Train.step > 6 then
          Alcotest.fail "step out of range")
      ~objective:(fun frame _ ->
        Adev.return (Ad.neg (Ad.mul (Store.Frame.get frame "x") (Store.Frame.get frame "x"))))
      k0
  in
  Alcotest.(check int) "callback per step" 7 !seen

let suites =
  [ ( "misc",
      [ Alcotest.test_case "adev monad laws" `Quick test_adev_monad_laws;
        Alcotest.test_case "adev replicate" `Quick test_adev_replicate;
        Alcotest.test_case "adev invalid args" `Quick test_adev_invalid_args;
        Alcotest.test_case "score_log = score.exp" `Quick
          test_score_log_matches_score;
        Alcotest.test_case "gen monad laws" `Quick test_gen_monad_laws;
        Alcotest.test_case "importance invalid" `Quick
          test_gen_importance_invalid;
        Alcotest.test_case "marginal missing keep" `Quick
          test_marginal_missing_keep_address;
        Alcotest.test_case "optim reset" `Quick test_optim_reset;
        Alcotest.test_case "ad deep chain" `Quick test_ad_deep_chain;
        Alcotest.test_case "ad wide fanout" `Quick test_ad_wide_fanout;
        Alcotest.test_case "grad before backward" `Quick
          test_ad_grad_before_backward_is_zero;
        Alcotest.test_case "log_stable guards" `Quick test_log_stable_guards;
        Alcotest.test_case "uniform invalid bounds" `Quick
          test_uniform_invalid_bounds;
        Alcotest.test_case "forward dual arithmetic" `Quick
          test_forward_dual_arithmetic;
        Alcotest.test_case "degenerate-estimate injection" `Quick
          test_training_survives_degenerate_estimates;
        Alcotest.test_case "train on_step" `Quick test_train_on_step_callback
      ] ) ]
