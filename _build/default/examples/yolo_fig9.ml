(* The Fig. 9 walkthrough: deriving a reverse-mode gradient estimator
   for a probabilistic program via forward-mode AD, unzipping, and
   transposition (Appendix A.4's YOLO pipeline), printed stage by stage.

   Run with: dune exec examples/yolo_fig9.exe *)

let fig9 =
  { Yolo.params = [ "theta1"; "theta2" ];
    body =
      [ Yolo.Sample_normal ("x", Yolo.Var "theta1", Yolo.Const 1.);
        Yolo.Let ("y", Yolo.Sin (Yolo.Var "x"));
        Yolo.Let ("z", Yolo.Add (Yolo.Var "y", Yolo.Var "theta2")) ];
    result = "z" }

let () =
  Format.printf "(a) input loss as a probabilistic program:@.%a@.@."
    Yolo.pp_program fig9;
  let dual = Yolo.forward fig9 in
  Format.printf "(b/c) after forward-mode ADEV (dual program):@.%a@.@."
    Yolo.pp_dual dual;
  let _, trace, lin = Yolo.unzip dual in
  Format.printf "(d) unzip: the trace is {%s}; %d linear statements@.@."
    (String.concat ", " trace)
    (List.length lin);
  let transposed = Yolo.transpose lin ~output:dual.tangent_result in
  Format.printf
    "(e) transpose: seed %s = 1, then %d scatter statements@.@."
    transposed.Yolo.seed
    (List.length transposed.Yolo.accums);
  let theta = [ ("theta1", 0.7); ("theta2", 0.2) ] in
  Format.printf "(f) one reverse-mode gradient sample at theta = (0.7, 0.2):@.";
  let v, grad = Yolo.reverse_grad fig9 theta (Prng.key 0) in
  Format.printf "  loss sample %.4f, gradient sample (%.4f, %.4f)@." v
    (List.assoc "theta1" grad)
    (List.assoc "theta2" grad);
  (* Average many samples: the estimator is unbiased. *)
  let n = 50000 in
  let g1 = ref 0. in
  for i = 0 to n - 1 do
    let _, g = Yolo.reverse_grad fig9 theta (Prng.fold_in (Prng.key 1) i) in
    g1 := !g1 +. List.assoc "theta1" g
  done;
  Format.printf
    "  mean of %d samples: d/dtheta1 = %.4f (closed form e^(-1/2) cos 0.7 = %.4f)@."
    n
    (!g1 /. float_of_int n)
    (Float.exp (-0.5) *. Float.cos 0.7)
