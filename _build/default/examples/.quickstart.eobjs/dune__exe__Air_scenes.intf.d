examples/air_scenes.mli:
