examples/yolo_fig9.mli:
