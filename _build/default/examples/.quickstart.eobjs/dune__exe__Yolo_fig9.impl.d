examples/yolo_fig9.ml: Float Format List Prng String Yolo
