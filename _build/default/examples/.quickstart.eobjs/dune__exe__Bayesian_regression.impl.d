examples/bayesian_regression.ml: Array Data List Printf Prng Regression
