examples/wake_sleep.ml: Ad Adev Dist Float Gen List Objectives Optim Printf Prng Store Tensor Train
