examples/cone_programmable.ml: Array Buffer Cone Float Gen List Printf Prng Store Trace
