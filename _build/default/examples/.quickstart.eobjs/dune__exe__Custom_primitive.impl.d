examples/custom_primitive.ml: Ad Adev Dist Gen List Objectives Optim Printf Prng Store Tensor Train Value
