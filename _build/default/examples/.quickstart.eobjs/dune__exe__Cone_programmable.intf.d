examples/cone_programmable.mli:
