examples/hmm_smoothing.mli:
