examples/bayesian_regression.mli:
