examples/air_scenes.ml: Air Array Data List Optim Printf Prng Store Tensor
