examples/quickstart.mli:
