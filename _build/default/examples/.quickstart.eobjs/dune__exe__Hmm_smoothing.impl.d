examples/hmm_smoothing.ml: Ad Array Dist Float Gen Layer List Objectives Optim Printf Prng Store String Tensor Trace Train
