examples/quickstart.ml: Ad Adev Dist Gen List Optim Printf Prng Store Tensor Trace Train
