examples/wake_sleep.mli:
