examples/vae_sprites.ml: Ad Array Data List Printf Prng Store String Tensor Train Vae
