examples/coin_fairness.ml: Coin List Printf Prng String Train
