examples/coin_fairness.mli:
