examples/custom_primitive.mli:
