examples/vae_sprites.mli:
