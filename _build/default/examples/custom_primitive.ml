(* Extending the system with a new primitive and a custom gradient
   estimation strategy, in a few lines of user code (Appendix F of the
   paper). No system internals are touched: a primitive is just a
   [Dist.make] record supplying

   - a sampler (agreeing with the density: the first proof obligation),
   - a differentiable log density (the second),
   - strategy data — here a reparameterized sampler via the inverse CDF
     (the third).

   We define Exponential(rate) with a REPARAM strategy and check the
   automated gradient of E[x^2] against the closed form
   d/d rate (2 / rate^2) = -4 / rate^3.

   Run with: dune exec examples/custom_primitive.exe *)

let exponential_reparam rate =
  Dist.make ~name:"exponential" ~strategy:Dist.Reparam
    ~sample:(fun key ->
      Ad.scalar (Prng.exponential key /. Tensor.to_scalar (Ad.value rate)))
    ~log_density:(fun x -> Ad.O.(Ad.log rate - (rate * x)))
    ~default:(Ad.scalar 1.) ~inject:(fun a -> Value.Real a)
    ~project:(function Value.Real a -> Some a | _ -> None)
    ~reparam:(fun key ->
      (* Inverse CDF: x = -log u / rate, differentiable in rate. *)
      let e = Prng.exponential key in
      Ad.div (Ad.scalar e) rate)
    ()

let () =
  let rate_v = 1.3 in
  let n = 20000 in
  Printf.printf
    "custom primitive: Exponential(%.1f) with a user-supplied REPARAM \
     strategy\n"
    rate_v;
  let open Adev.Syntax in
  let total_v = ref 0. and total_g = ref 0. in
  for i = 0 to n - 1 do
    let rate = Ad.scalar rate_v in
    let obj =
      let* x = Adev.sample (exponential_reparam rate) in
      Adev.return (Ad.mul x x)
    in
    let v, grads =
      Adev.grad ~params:[ ("rate", rate) ] obj (Prng.fold_in (Prng.key 0) i)
    in
    total_v := !total_v +. v;
    total_g := !total_g +. Tensor.to_scalar (List.assoc "rate" grads)
  done;
  let nf = float_of_int n in
  Printf.printf "E[x^2]         estimated %.3f   closed form %.3f\n"
    (!total_v /. nf)
    (2. /. (rate_v ** 2.));
  Printf.printf "d/drate E[x^2] estimated %.3f   closed form %.3f\n"
    (!total_g /. nf)
    (-4. /. (rate_v ** 3.));

  (* The new primitive composes with everything else: use it inside a
     generative program and a variational objective unchanged. *)
  let model =
    let open Gen.Syntax in
    let* x = Gen.sample (exponential_reparam (Ad.scalar 1.)) "x" in
    Gen.observe (Dist.normal_reparam x (Ad.scalar 0.5)) (Ad.scalar 2.)
  in
  let store = Store.create () in
  Store.ensure store "q.rate" (fun () -> Tensor.scalar 1.);
  let guide frame =
    let rate = Ad.add_scalar 1e-3 (Ad.softplus (Store.Frame.get frame "q.rate")) in
    Gen.sample (exponential_reparam rate) "x"
  in
  let optim = Optim.adam ~lr:0.05 () in
  let reports =
    Train.fit ~store ~optim ~steps:600 ~samples:4
      ~objective:(fun frame _ ->
        Objectives.elbo ~model
          ~guide:(Gen.map (fun _ -> ()) (guide frame)))
      (Prng.key 1)
  in
  Printf.printf
    "\nused inside a Gen model + ELBO: objective %.3f -> %.3f over 600 steps\n"
    (List.nth reports 0).Train.objective
    (List.nth reports 599).Train.objective
