(* Reweighted wake-sleep (Appendix B): alternately fit the model with
   the wake-phase P objective and the guide with the wake-phase Q
   objective, both built from [normalize] (SIR toward the current
   posterior).

   The model is a conjugate Gaussian with a learnable prior mean, so
   every quantity has a closed form to check against:

     x ~ N(theta, 1);  y | x ~ N(x, 1);  y = 1.4 observed.

   - Maximizing the marginal likelihood drives theta -> y.
   - At that optimum the posterior over x is N((theta + y)/2, 1/sqrt 2),
     which the guide should match.

   Run with: dune exec examples/wake_sleep.exe *)

let y = 1.4

let model frame =
  let theta = Store.Frame.get frame "ws.theta" in
  let open Gen.Syntax in
  let* x = Gen.sample (Dist.normal_reparam theta (Ad.scalar 1.)) "x" in
  Gen.observe (Dist.normal_reparam x (Ad.scalar 1.)) (Ad.scalar y)

let guide frame =
  let mu = Store.Frame.get frame "ws.mu" in
  let std = Ad.add_scalar 1e-3 (Ad.softplus (Store.Frame.get frame "ws.rho")) in
  let open Gen.Syntax in
  let* _ = Gen.sample (Dist.normal_reparam mu std) "x" in
  Gen.return ()

let () =
  let store = Store.create () in
  List.iter
    (fun (name, v) -> Store.ensure store name (fun () -> Tensor.scalar v))
    [ ("ws.theta", -0.5); ("ws.mu", 0.); ("ws.rho", 0.) ];
  let optim = Optim.adam ~lr:0.02 () in
  let particles = 5 in
  (* One objective per phase; the proposal is the current guide with
     detached parameters (the paper's phi'). Summing the two phases
     updates theta and phi in one pass — their parameter sets are
     disjoint, so this is exactly alternation. *)
  let objective frame _step =
    let open Adev.Syntax in
    let proposal = guide (Store.Frame.detach frame) in
    let* p = Objectives.pwake ~particles ~model:(model frame) ~proposal in
    let* q =
      Objectives.qwake ~particles ~model:(model frame) ~proposal
        ~guide:(guide frame)
    in
    Adev.return (Ad.add p q)
  in
  Printf.printf "Reweighted wake-sleep on the conjugate model (y = %.1f)\n\n" y;
  let read name = Tensor.to_scalar (Store.tensor store name) in
  let report step =
    let std = 1e-3 +. Float.log (1. +. Float.exp (read "ws.rho")) in
    Printf.printf
      "step %4d  theta % .3f   guide N(% .3f, %.3f)   target theta %.1f, \
       posterior N(%.3f, %.3f)\n%!"
      step (read "ws.theta") (read "ws.mu") std y
      ((read "ws.theta" +. y) /. 2.)
      (1. /. Float.sqrt 2.)
  in
  report 0;
  for round = 1 to 6 do
    let (_ : Train.report list) =
      Train.fit ~store ~optim ~steps:400 ~samples:2 ~objective
        (Prng.key round)
    in
    report (round * 400)
  done;
  let theta = read "ws.theta" in
  let mu = read "ws.mu" in
  Printf.printf
    "\ntheta converged to %.3f (marginal-likelihood optimum %.1f);\n\
     guide mean %.3f tracks the posterior mean %.3f.\n"
    theta y mu
    ((theta +. y) /. 2.)
