(* Bayesian linear regression (Appendix D.2): infer how terrain
   ruggedness relates to (log) GDP inside and outside Africa, with a
   mean-field Gaussian guide over the regression coefficients.

   Run with: dune exec examples/bayesian_regression.exe *)

let () =
  Printf.printf "%d synthetic countries; fitting 5-site mean-field guide\n"
    (Array.length Regression.data);
  let store, _, seconds = Regression.train ~steps:1500 (Prng.key 0) in
  Printf.printf "trained in %.2f s\n\n" seconds;
  let a, ba, br, bar = Regression.coefficient_means store in
  let ta, tba, tbr, tbar = Data.regression_truth in
  Printf.printf "coefficient   learned   generating\n";
  Printf.printf "a            %8.3f   %8.3f\n" a ta;
  Printf.printf "bAfrica      %8.3f   %8.3f\n" ba tba;
  Printf.printf "bRugged      %8.3f   %8.3f\n" br tbr;
  Printf.printf "bInteract    %8.3f   %8.3f\n\n" bar tbar;
  Printf.printf "ELBO per datum: %.3f\n\n"
    (Regression.final_elbo_per_datum store (Prng.key 1));
  Printf.printf "posterior predictive regression lines (mean [90%% CI]):\n";
  Printf.printf "%-12s %-26s %s\n" "ruggedness" "in Africa" "outside Africa";
  List.iter
    (fun r ->
      let m1, lo1, hi1 =
        Regression.predict store ~ruggedness:r ~in_africa:true (Prng.key 2)
      in
      let m0, lo0, hi0 =
        Regression.predict store ~ruggedness:r ~in_africa:false (Prng.key 3)
      in
      Printf.printf "%-12.1f %5.2f [%5.2f, %5.2f]       %5.2f [%5.2f, %5.2f]\n"
        r m1 lo1 hi1 m0 lo0 hi0)
    [ 0.; 1.; 2.; 3.; 4.; 5.; 6. ];
  Printf.printf
    "\nThe interaction term flips the slope inside Africa, matching the\n\
     generating process (and the shape of the paper's Fig. 12).\n"
