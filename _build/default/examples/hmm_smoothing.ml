(* Amortization-free VI on a discrete hidden Markov model, checked
   against exact inference.

   A 3-state weather HMM emits noisy observations for 6 days; the guide
   is a learned (non-stationary) Markov chain over the hidden states,
   trained with ENUM gradients — so the ELBO and its gradient are exact
   on every step, and the trained guide can be compared state-by-state
   with the exact smoothing posterior computed by [Gen.enumerate].

   This shows three things at once: stochastic structure with many
   discrete sites, exact enumeration both as an estimator strategy and
   as a test oracle, and VI converging to the true posterior when the
   family contains it.

   Run with: dune exec examples/hmm_smoothing.exe *)

let num_states = 3
let horizon = 6
let state_names = [| "sunny"; "cloudy"; "rainy" |]

(* Transition and emission matrices. *)
let transition =
  [| [| 0.7; 0.2; 0.1 |]; [| 0.3; 0.4; 0.3 |]; [| 0.2; 0.3; 0.5 |] |]

let emission = [| [| 0.8; 0.15; 0.05 |]; [| 0.2; 0.6; 0.2 |]; [| 0.05; 0.25; 0.7 |] |]
let observations = [ 0; 0; 1; 2; 2; 1 ]

let row m i = Ad.const (Tensor.of_array [| num_states |] m.(i))
let uniform_probs = Ad.const (Tensor.full [| num_states |] (1. /. 3.))

let addr t = Printf.sprintf "z%d" t

let model =
  let open Gen.Syntax in
  let rec go t prev =
    if t >= horizon then Gen.return ()
    else begin
      let probs = if t = 0 then uniform_probs else row transition prev in
      let* z = Gen.sample (Dist.categorical_reinforce probs) (addr t) in
      let* () =
        Gen.observe
          (Dist.categorical_reinforce (row emission z))
          (List.nth observations t)
      in
      go (t + 1) z
    end
  in
  go 0 0

(* Guide: learned initial logits plus a learned per-step transition
   table — expressive enough to contain the exact smoothing posterior,
   which factorizes as q(z0) prod_t q(z_{t+1} | z_t). *)
let guide frame =
  let open Gen.Syntax in
  let logits t prev =
    Layer.apply_activation Layer.Linear
      (Store.Frame.get frame (Printf.sprintf "hmm.q.%d.%d" t prev))
  in
  let rec go t prev =
    if t >= horizon then Gen.return ()
    else
      let* z =
        Gen.sample (Dist.categorical_logits_enum (logits t prev)) (addr t)
      in
      go (t + 1) z
  in
  go 0 0

let register store =
  for t = 0 to horizon - 1 do
    for prev = 0 to num_states - 1 do
      Store.ensure store
        (Printf.sprintf "hmm.q.%d.%d" t prev)
        (fun () -> Tensor.zeros [| num_states |])
    done
  done

(* Exact smoothing marginals from full enumeration. *)
let exact_marginals () =
  let traces = Gen.enumerate model in
  let logz = Gen.exact_log_marginal model in
  let marginals = Array.make_matrix horizon num_states 0. in
  List.iter
    (fun ((), trace, logw) ->
      let p = Float.exp (logw -. logz) in
      for t = 0 to horizon - 1 do
        let z = Trace.get_int (addr t) trace in
        marginals.(t).(z) <- marginals.(t).(z) +. p
      done)
    traces;
  marginals

(* Guide smoothing marginals by (cheap) forward enumeration of the
   guide chain. *)
let guide_marginals store =
  let frame = Store.Frame.make store in
  let probs t prev =
    Tensor.to_array
      (Tensor.softmax
         (Ad.value (Store.Frame.get frame (Printf.sprintf "hmm.q.%d.%d" t prev))))
  in
  let marginals = Array.make_matrix horizon num_states 0. in
  let rec walk t prev weight =
    if t < horizon then begin
      let p = probs t prev in
      for z = 0 to num_states - 1 do
        marginals.(t).(z) <- marginals.(t).(z) +. (weight *. p.(z));
        walk (t + 1) z (weight *. p.(z))
      done
    end
  in
  walk 0 0 1.;
  marginals

let () =
  Printf.printf "observations: %s\n\n"
    (String.concat " " (List.map string_of_int observations));
  let store = Store.create () in
  register store;
  let optim = Optim.adam ~lr:0.1 () in
  let reports =
    Train.fit ~store ~optim ~steps:250
      ~objective:(fun frame _ -> Objectives.elbo ~model ~guide:(guide frame))
      (Prng.key 0)
  in
  let logz = Gen.exact_log_marginal model in
  Printf.printf "exact log evidence: %.4f\n" logz;
  Printf.printf "ELBO: step 0 %.4f -> step 249 %.4f\n\n"
    (List.nth reports 0).Train.objective
    (List.nth reports 249).Train.objective;
  let exact = exact_marginals () in
  let learned = guide_marginals store in
  Printf.printf "smoothing marginals, exact vs learned guide:\n";
  let max_err = ref 0. in
  for t = 0 to horizon - 1 do
    Printf.printf "  day %d:" t;
    for z = 0 to num_states - 1 do
      Printf.printf "  %s %.3f/%.3f" state_names.(z) exact.(t).(z)
        learned.(t).(z);
      max_err := Float.max !max_err (Float.abs (exact.(t).(z) -. learned.(t).(z)))
    done;
    print_newline ()
  done;
  Printf.printf "\nmax marginal error: %.4f\n" !max_err;
  Printf.printf
    "(ENUM gradients are exact, so the guide converges to the true\n\
     smoothing posterior and the final ELBO equals the log evidence.)\n"
