(* Programmable variational inference on the ring posterior (Fig. 3).

   Three ways to beat the mean-field guide of quickstart.exe:
   - the IWELBO objective (train q as a proposal for importance
     sampling);
   - an SIR guide built with [normalize] (sample-importance-resample
     toward the posterior);
   - a hierarchical guide built with [marginal] (an auxiliary angle
     variable shapes the ring, then gets marginalized out).

   Run with: dune exec examples/cone_programmable.exe *)

let ascii_scatter pts =
  (* 21x41 character density plot of points in [-3, 3]^2. *)
  let rows = 21 and cols = 41 in
  let grid = Array.make_matrix rows cols 0 in
  List.iter
    (fun (x, y) ->
      let c = int_of_float (Float.round ((x +. 3.) /. 6. *. float_of_int (cols - 1))) in
      let r = int_of_float (Float.round ((3. -. y) /. 6. *. float_of_int (rows - 1))) in
      if r >= 0 && r < rows && c >= 0 && c < cols then
        grid.(r).(c) <- grid.(r).(c) + 1)
    pts;
  let buf = Buffer.create 1024 in
  Array.iter
    (fun row ->
      Array.iter
        (fun n ->
          Buffer.add_char buf
            (if n = 0 then '.' else if n < 3 then '+' else '#'))
        row;
      Buffer.add_char buf '\n')
    grid;
  Buffer.contents buf

let () =
  let steps = 1500 in
  Printf.printf "Training objectives on the ring posterior (%d steps each)\n"
    steps;

  (* Mean-field ELBO, for contrast. *)
  let store_e, _ = Cone.train ~steps Cone.Elbo (Prng.key 1) in
  Printf.printf "\n[ELBO, mean-field guide] final value %.2f\n"
    (Cone.final_value store_e Cone.Elbo (Prng.key 2));
  print_string
    (ascii_scatter (Cone.guide_samples store_e Cone.Elbo 600 (Prng.key 3)));

  (* IWELBO + SIR guide (normalize). *)
  let store_iw, _ = Cone.train ~steps (Cone.Iwelbo 5) (Prng.key 4) in
  Printf.printf "\n[IWELBO(5)] final value %.2f; drawing from q_SIR(N=30):\n"
    (Cone.final_value store_iw (Cone.Iwelbo 5) (Prng.key 5));
  let frame = Store.Frame.make store_iw in
  let sir = Cone.guide_sir ~particles:30 frame in
  let sir_pts =
    List.init 600 (fun i ->
        let _, trace, _ = Gen.sample_prior sir (Prng.fold_in (Prng.key 6) i) in
        (Trace.get_float "x" trace, Trace.get_float "y" trace))
  in
  print_string (ascii_scatter sir_pts);

  (* Hierarchical guide via marginal (IWHVI). *)
  let store_h, _ = Cone.train ~steps (Cone.Iwhvi 5) (Prng.key 7) in
  Printf.printf "\n[IWHVI(5), hierarchical guide via marginal] final value %.2f\n"
    (Cone.final_value store_h (Cone.Iwhvi 5) (Prng.key 8));
  print_string
    (ascii_scatter (Cone.guide_samples store_h (Cone.Iwhvi 5) 600 (Prng.key 9)));

  Printf.printf
    "\nThe SIR and hierarchical guides cover the whole ring; the mean-field\n\
     guide collapses to an arc. Table 4 of the paper reports the same\n\
     objective ordering (run: dune exec bench/main.exe -- t4).\n"
