(* Coin-fairness inference (Appendix D.1): Beta prior, Bernoulli
   likelihood, Beta guide trained by score-function VI. Because the
   model is conjugate, we can print the exact posterior next to the
   learned one.

   Run with: dune exec examples/coin_fairness.exe *)

let () =
  Printf.printf "Observed flips: %s\n"
    (String.concat " "
       (List.map (fun b -> if b then "H" else "T") Coin.flips));
  Printf.printf "Prior: Beta(10, 10); guide: Beta(softplus a, softplus b)\n\n";
  let store, reports, seconds = Coin.train ~steps:1500 (Prng.key 0) in
  List.iter
    (fun s ->
      Printf.printf "step %4d  ELBO %7.3f\n" s
        (List.nth reports s).Train.objective)
    [ 0; 200; 600; 1400 ];
  Printf.printf "\ntrained in %.2f s (%.2f ms/step)\n" seconds
    (1000. *. seconds /. 1500.);
  Printf.printf "posterior mean of the coin weight: %.3f\n"
    (Coin.posterior_mean store);
  Printf.printf "exact conjugate posterior mean:    %.3f\n"
    Coin.exact_posterior_mean;
  Printf.printf "final ELBO estimate: %.2f\n"
    (Coin.final_elbo store (Prng.key 1))
