(* Attend-Infer-Repeat on multi-object scenes (the Table 2 / Fig. 8
   workload): a chain of presence flips decides how many glyphs are on
   the canvas; position and appearance latents render each one. The
   discrete latents use measure-valued derivatives — the estimator the
   paper highlights as both fast and not expressible in fixed-menu PPLs.

   Run with: dune exec examples/air_scenes.exe *)

let () =
  let images, counts = Data.air_batch (Prng.key 0) 192 in
  let eval_images, eval_counts = Data.air_batch (Prng.key 1) 64 in
  let store = Store.create () in
  Air.register store (Prng.key 2);
  let optim = Optim.adam ~lr:1e-3 () in
  let baselines = Air.make_baselines () in
  Printf.printf "Training AIR with ELBO + MVD on %d scenes\n"
    (Array.length counts);
  for epoch = 1 to 6 do
    let obj, dt =
      Air.train_epoch ~pres:Air.MV ~pos:Air.MV ~store ~optim ~baselines
        ~objective:Air.Elbo ~images ~batch:16
        (Prng.fold_in (Prng.key 3) epoch)
    in
    let acc =
      Air.count_accuracy store eval_images eval_counts
        (Prng.fold_in (Prng.key 4) epoch)
    in
    Printf.printf "epoch %d: ELBO %8.2f  count accuracy %.2f  (%.2f s)\n%!"
      epoch obj acc dt
  done;
  Printf.printf "\nScene inspection (true vs inferred object count):\n";
  List.iter
    (fun i ->
      let img = Tensor.slice0 eval_images i in
      let inferred = Air.infer_count store img (Prng.fold_in (Prng.key 5) i) in
      Printf.printf "\ntrue count %d, inferred %d:\n%s" eval_counts.(i)
        inferred (Data.ascii img))
    [ 0; 1; 2 ]
