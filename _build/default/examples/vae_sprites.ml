(* A variational autoencoder on sprite digits (the Table 1 workload):
   amortized Gaussian guide, Bernoulli pixel likelihood, everything
   batched through one vector-valued trace address.

   Run with: dune exec examples/vae_sprites.exe *)

let () =
  Printf.printf "Training a VAE (latent %d, hidden %d) on sprite digits\n"
    Vae.latent_dim Vae.hidden_dim;
  let store, reports = Vae.train ~steps:300 ~batch:64 (Prng.key 0) in
  List.iter
    (fun s ->
      Printf.printf "step %4d  ELBO/datum %8.2f\n" s
        (List.nth reports s).Train.objective)
    [ 0; 50; 100; 200; 299 ];

  (* Reconstruction demo: encode a sprite, decode the posterior mean. *)
  let images, labels = Data.digit_batch (Prng.key 1) 4 in
  let frame = Store.Frame.make store in
  Printf.printf "\nReconstructions (input | decoded posterior mean):\n";
  List.iter
    (fun i ->
      let img = Tensor.slice0 images i in
      let mu, _ = Vae.encode frame (Ad.const (Tensor.stack0 [ img ])) in
      let logits = Vae.decode frame mu in
      let recon = Tensor.sigmoid (Tensor.slice0 (Ad.value logits) 0) in
      Printf.printf "\ndigit %d:\n" labels.(i);
      let left = String.split_on_char '\n' (Data.ascii img) in
      let right = String.split_on_char '\n' (Data.ascii recon) in
      List.iter2
        (fun l r -> if l <> "" then Printf.printf "%s   %s\n" l r)
        left right)
    [ 0; 1 ];

  (* Unconditional generation from the prior. *)
  Printf.printf "\nPrior samples (decoded):\n";
  List.iter
    (fun i ->
      let z =
        Ad.const (Prng.normal_tensor (Prng.fold_in (Prng.key 2) i) [| 1; Vae.latent_dim |])
      in
      let logits = Vae.decode frame z in
      print_string (Data.ascii (Tensor.slice0 (Tensor.sigmoid (Ad.value logits)) 0));
      print_newline ())
    [ 0; 1 ];

  Printf.printf
    "Overhead vs a hand-coded estimator is measured by\n\
     dune exec bench/main.exe -- t1\n"
