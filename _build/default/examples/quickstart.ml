(* Quickstart: the Fig. 2 workflow end to end.

   1. Write a model in the generative language (a point near a 3D cone,
      conditioned on its height).
   2. Write a mean-field variational family with REPARAM-annotated
      primitives.
   3. Define the ELBO as a differentiable-language program from the
      compiled sim/density of the two programs.
   4. Optimize with unbiased ADEV gradients + ADAM.

   Run with: dune exec examples/quickstart.exe *)

open Gen.Syntax

(* Step 1: the model. (x, y) have broad normal priors; we observe that
   x^2 + y^2 is 5, so the posterior is a ring of radius sqrt 5. *)
let model =
  let* x = Gen.sample (Dist.normal_reparam (Ad.scalar 0.) (Ad.scalar 3.)) "x" in
  let* y = Gen.sample (Dist.normal_reparam (Ad.scalar 0.) (Ad.scalar 3.)) "y" in
  let r2 = Ad.add (Ad.mul x x) (Ad.mul y y) in
  Gen.observe (Dist.normal_reparam r2 (Ad.scalar 0.5)) (Ad.scalar 5.)

(* Step 2: the variational family. Each primitive carries its gradient
   estimation strategy (REPARAM here); parameters live in a store. *)
let guide frame =
  let p = Store.Frame.get frame in
  let std rho = Ad.add_scalar 1e-3 (Ad.softplus rho) in
  let* _ = Gen.sample (Dist.normal_reparam (p "mx") (std (p "rx"))) "x" in
  let* _ = Gen.sample (Dist.normal_reparam (p "my") (std (p "ry"))) "y" in
  Gen.return ()

(* Step 3: the objective — literally Eqn. 3, written with the compiled
   simulator of the guide and density of the model. *)
let elbo frame =
  let open Adev.Syntax in
  let* _, trace, logq = Gen.simulate (guide frame) in
  let* logp = Gen.log_density model trace in
  Adev.return (Ad.sub logp logq)

let () =
  let store = Store.create () in
  List.iter
    (fun name -> Store.ensure store name (fun () -> Tensor.scalar 0.5))
    [ "mx"; "rx"; "my"; "ry" ];
  let optim = Optim.adam ~lr:0.05 () in
  Printf.printf "Training a mean-field guide on the ring posterior...\n";
  let reports =
    Train.fit ~store ~optim ~steps:1500
      ~objective:(fun frame _ -> elbo frame)
      ~on_step:(fun r ->
        if r.Train.step mod 300 = 0 then
          Printf.printf "  step %4d  ELBO estimate %8.3f\n%!" r.Train.step
            r.Train.objective)
      (Prng.key 0)
  in
  let final =
    List.fold_left ( +. ) 0.
      (List.filteri
         (fun i _ -> i >= 1400)
         (List.map (fun r -> r.Train.objective) reports))
    /. 100.
  in
  Printf.printf "final ELBO (last 100 steps): %.3f\n" final;
  Printf.printf "\nSamples from the trained guide (x, y, x^2+y^2):\n";
  let frame = Store.Frame.make store in
  List.iter
    (fun i ->
      let _, trace, _ = Gen.sample_prior (guide frame) (Prng.fold_in (Prng.key 1) i) in
      let x = Trace.get_float "x" trace and y = Trace.get_float "y" trace in
      Printf.printf "  (% .2f, % .2f)   r^2 = %.2f\n" x y ((x *. x) +. (y *. y)))
    [ 1; 2; 3; 4; 5; 6 ];
  Printf.printf
    "\nThe reverse KL is mode-seeking: the Gaussian guide settles on one\n\
     arc of the ring. See cone_programmable.exe for guides that cover it.\n"
